#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim_test_util.hpp"

namespace psched::sim {
namespace {

using test::raw_copy;
using test::raw_kernel;

class EngineTest : public ::testing::Test {
 protected:
  Engine eng_{DeviceSpec::test_device()};
};

TEST_F(EngineTest, StartsWithDefaultStream) {
  EXPECT_EQ(eng_.num_streams(), 1u);
  EXPECT_TRUE(eng_.stream_idle(kDefaultStream));
  EXPECT_TRUE(eng_.all_idle());
  EXPECT_DOUBLE_EQ(eng_.now(), 0);
}

TEST_F(EngineTest, CreateStreamsAndEvents) {
  EXPECT_EQ(eng_.create_stream(), 1);
  EXPECT_EQ(eng_.create_stream(), 2);
  EXPECT_EQ(eng_.create_event(), 0);
  EXPECT_EQ(eng_.create_event(), 1);
}

TEST_F(EngineTest, SingleKernelRunsToCompletion) {
  const OpId id = eng_.enqueue(raw_kernel(0, 100, 4, 1.0), 0);
  EXPECT_FALSE(eng_.op_done(id));
  const TimeUs t = eng_.run_until_op_done(id);
  EXPECT_DOUBLE_EQ(t, 100);
  EXPECT_TRUE(eng_.op_done(id));
  EXPECT_DOUBLE_EQ(eng_.op(id).start_time, 0);
  EXPECT_DOUBLE_EQ(eng_.op(id).end_time, 100);
}

TEST_F(EngineTest, StreamFifoOrder) {
  const OpId a = eng_.enqueue(raw_kernel(0, 50, 4, 1.0, 0, "a"), 0);
  const OpId b = eng_.enqueue(raw_kernel(0, 30, 4, 1.0, 0, "b"), 0);
  eng_.run_all();
  EXPECT_DOUBLE_EQ(eng_.op(a).end_time, 50);
  EXPECT_DOUBLE_EQ(eng_.op(b).start_time, 50);
  EXPECT_DOUBLE_EQ(eng_.op(b).end_time, 80);
}

TEST_F(EngineTest, EnqueueTimeDelaysStart) {
  const OpId a = eng_.enqueue(raw_kernel(0, 10, 4, 1.0), /*host_time=*/25);
  eng_.run_all();
  EXPECT_DOUBLE_EQ(eng_.op(a).start_time, 25);
  EXPECT_DOUBLE_EQ(eng_.op(a).end_time, 35);
}

TEST_F(EngineTest, IndependentStreamsOverlap) {
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  // Quarter-fill kernels: co-running is faster than serial execution.
  const OpId a = eng_.enqueue(raw_kernel(s1, 100, 1, 1.0), 0);
  const OpId b = eng_.enqueue(raw_kernel(s2, 100, 1, 1.0), 0);
  eng_.run_all();
  EXPECT_DOUBLE_EQ(eng_.op(a).start_time, 0);
  EXPECT_DOUBLE_EQ(eng_.op(b).start_time, 0);
  EXPECT_LT(eng_.op(a).end_time, 200);  // better than serialized
  EXPECT_GT(eng_.op(a).end_time, 100);  // but not free
  EXPECT_DOUBLE_EQ(eng_.op(a).end_time, eng_.op(b).end_time);
}

TEST_F(EngineTest, FullDeviceKernelsShareLikeSerial) {
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  const OpId a = eng_.enqueue(raw_kernel(s1, 100, 4, 1.0), 0);
  const OpId b = eng_.enqueue(raw_kernel(s2, 100, 4, 1.0), 0);
  eng_.run_all();
  EXPECT_NEAR(eng_.op(a).end_time, 200, 1e-6);
  EXPECT_NEAR(eng_.op(b).end_time, 200, 1e-6);
}

TEST_F(EngineTest, RatesRebalanceWhenOpCompletes) {
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  // a: 100us solo; b: 30us solo. Both full-fill -> share until b finishes.
  const OpId a = eng_.enqueue(raw_kernel(s1, 100, 4, 1.0), 0);
  const OpId b = eng_.enqueue(raw_kernel(s2, 30, 4, 1.0), 0);
  eng_.run_all();
  // b finishes at 60 (rate 1/2); a then speeds to rate 1 with 70 work left.
  EXPECT_NEAR(eng_.op(b).end_time, 60, 1e-6);
  EXPECT_NEAR(eng_.op(a).end_time, 130, 1e-6);
}

TEST_F(EngineTest, EventRecordAndWaitAcrossStreams) {
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  const EventId ev = eng_.create_event();
  const OpId a = eng_.enqueue(raw_kernel(s1, 50, 4, 1.0), 0);
  eng_.record_event(ev, s1, 0);
  eng_.wait_event(s2, ev, 0);
  const OpId b = eng_.enqueue(raw_kernel(s2, 10, 4, 1.0), 0);
  eng_.run_all();
  EXPECT_DOUBLE_EQ(eng_.op(b).start_time, 50);  // waited for a
  EXPECT_DOUBLE_EQ(eng_.op(a).end_time, 50);
  EXPECT_TRUE(eng_.event_done(ev));
  EXPECT_DOUBLE_EQ(eng_.event_done_time(ev), 50);
}

TEST_F(EngineTest, EventOnEmptyStreamCompletesImmediately) {
  const EventId ev = eng_.create_event();
  eng_.record_event(ev, kDefaultStream, /*host_time=*/5);
  EXPECT_DOUBLE_EQ(eng_.event_done_time(ev), 5);
  eng_.advance_to(5);
  EXPECT_TRUE(eng_.event_done(ev));
}

TEST_F(EngineTest, WaitOnAlreadyCompleteEventDoesNotDelay) {
  const StreamId s1 = eng_.create_stream();
  const EventId ev = eng_.create_event();
  eng_.record_event(ev, kDefaultStream, 0);
  eng_.wait_event(s1, ev, 0);
  const OpId a = eng_.enqueue(raw_kernel(s1, 10, 4, 1.0), 0);
  eng_.run_all();
  EXPECT_DOUBLE_EQ(eng_.op(a).start_time, 0);
}

TEST_F(EngineTest, EventReRecordResets) {
  const StreamId s1 = eng_.create_stream();
  const EventId ev = eng_.create_event();
  const OpId a = eng_.enqueue(raw_kernel(s1, 50, 4, 1.0), 0);
  eng_.record_event(ev, s1, 0);
  eng_.run_until_op_done(a);
  EXPECT_DOUBLE_EQ(eng_.event_done_time(ev), 50);
  // Re-record on an idle stream at a later host time.
  eng_.record_event(ev, s1, 80);
  EXPECT_DOUBLE_EQ(eng_.event_done_time(ev), 80);
}

TEST_F(EngineTest, WaitOnUnrecordedEventDeadlocks) {
  const StreamId s1 = eng_.create_stream();
  const EventId ev = eng_.create_event();
  eng_.wait_event(s1, ev, 0);
  eng_.enqueue(raw_kernel(s1, 10, 4, 1.0), 0);
  EXPECT_THROW(eng_.run_all(), Error);
}

TEST_F(EngineTest, RunUntilEventOnUnrecordedThrows) {
  const EventId ev = eng_.create_event();
  EXPECT_THROW(eng_.run_until_event(ev), ApiError);
}

TEST_F(EngineTest, InvalidHandlesThrow) {
  EXPECT_THROW(eng_.enqueue(raw_kernel(7, 10, 4, 1.0), 0), ApiError);
  EXPECT_THROW(eng_.record_event(99, 0, 0), ApiError);
  EXPECT_THROW(eng_.record_event(-1, 0, 0), ApiError);
  EXPECT_THROW(eng_.wait_event(0, 42, 0), ApiError);
  EXPECT_THROW((void)eng_.stream_idle(9), ApiError);
  EXPECT_THROW((void)eng_.op(424242), ApiError);
}

TEST_F(EngineTest, AdvanceToMakesPartialProgress) {
  const OpId a = eng_.enqueue(raw_kernel(0, 100, 4, 1.0), 0);
  eng_.advance_to(40);
  EXPECT_FALSE(eng_.op_done(a));
  EXPECT_NEAR(eng_.op(a).done, 40, 1e-9);
  EXPECT_DOUBLE_EQ(eng_.now(), 40);
  eng_.advance_to(100);
  EXPECT_TRUE(eng_.op_done(a));
}

TEST_F(EngineTest, AdvanceToNeverGoesBackward) {
  eng_.advance_to(50);
  eng_.advance_to(10);
  EXPECT_DOUBLE_EQ(eng_.now(), 50);
}

TEST_F(EngineTest, RunUntilStreamIdle) {
  const StreamId s1 = eng_.create_stream();
  eng_.enqueue(raw_kernel(s1, 70, 4, 1.0), 0);
  const OpId other = eng_.enqueue(raw_kernel(0, 500, 1, 0.25), 0);
  const TimeUs t = eng_.run_until_stream_idle(s1);
  EXPECT_GE(t, 70);
  EXPECT_TRUE(eng_.stream_idle(s1));
  EXPECT_FALSE(eng_.op_done(other));
}

TEST_F(EngineTest, TransfersRecordBytesInTimeline) {
  eng_.enqueue(raw_copy(0, OpKind::CopyH2D, 2e4, "up"), 0);
  eng_.run_all();
  ASSERT_EQ(eng_.timeline().entries().size(), 1u);
  const auto& e = eng_.timeline().entries()[0];
  EXPECT_EQ(e.kind, OpKind::CopyH2D);
  EXPECT_DOUBLE_EQ(e.bytes, 2e4);
  EXPECT_DOUBLE_EQ(e.end - e.start, 2.0);  // 2e4 bytes at 1e4 B/us
}

TEST_F(EngineTest, MarkersDoNotAppearInTimeline) {
  const EventId ev = eng_.create_event();
  eng_.record_event(ev, 0, 0);
  eng_.wait_event(0, ev, 0);
  eng_.enqueue(raw_kernel(0, 10, 4, 1.0), 0);
  eng_.run_all();
  for (const auto& e : eng_.timeline().entries()) {
    EXPECT_NE(e.kind, OpKind::Marker);
  }
  EXPECT_EQ(eng_.timeline().entries().size(), 1u);
}

TEST_F(EngineTest, OnCompleteFiresInDependencyOrder) {
  std::vector<int> order;
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  const EventId ev = eng_.create_event();

  Op a = raw_kernel(s1, 50, 4, 1.0, 0, "a");
  a.on_complete = [&order] { order.push_back(1); };
  eng_.enqueue(std::move(a), 0);
  eng_.record_event(ev, s1, 0);
  eng_.wait_event(s2, ev, 0);
  Op b = raw_kernel(s2, 10, 4, 1.0, 0, "b");
  b.on_complete = [&order] { order.push_back(2); };
  eng_.enqueue(std::move(b), 0);

  eng_.run_all();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST_F(EngineTest, SetOnCompleteValidation) {
  const OpId a = eng_.enqueue(raw_kernel(0, 10, 4, 1.0), 0);
  eng_.set_on_complete(a, [] {});
  eng_.run_all();
  EXPECT_THROW(eng_.set_on_complete(a, [] {}), ApiError);
  EXPECT_THROW(eng_.set_on_complete(999, [] {}), ApiError);
}

TEST_F(EngineTest, DeterministicReplay) {
  auto run_once = [] {
    Engine eng(DeviceSpec::test_device());
    const StreamId s1 = eng.create_stream();
    const StreamId s2 = eng.create_stream();
    std::vector<OpId> ids;
    for (int i = 0; i < 8; ++i) {
      ids.push_back(eng.enqueue(
          raw_kernel(i % 2 == 0 ? s1 : s2, 10 + 3 * i, 1 + i % 4, 1.0), 0));
    }
    eng.run_all();
    std::vector<TimeUs> ends;
    for (OpId id : ids) ends.push_back(eng.op(id).end_time);
    return ends;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(EngineTest, ManyStreamsDrainCompletely) {
  std::vector<StreamId> streams;
  for (int i = 0; i < 10; ++i) streams.push_back(eng_.create_stream());
  for (int rep = 0; rep < 5; ++rep) {
    for (StreamId s : streams) {
      eng_.enqueue(raw_kernel(s, 5 + s, 1, 0.5), 0);
    }
  }
  eng_.run_all();
  EXPECT_TRUE(eng_.all_idle());
  EXPECT_EQ(eng_.timeline().entries().size(), 50u);
}

TEST_F(EngineTest, WorkConservation) {
  // Total solo work equals the integral of rates over time: with only
  // full-fill kernels the makespan must equal the sum of solo durations.
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  const StreamId s3 = eng_.create_stream();
  eng_.enqueue(raw_kernel(s1, 40, 4, 1.0), 0);
  eng_.enqueue(raw_kernel(s2, 25, 4, 1.0), 0);
  eng_.enqueue(raw_kernel(s3, 35, 4, 1.0), 0);
  eng_.run_all();
  EXPECT_NEAR(eng_.timeline().makespan(), 100, 1e-6);
}


// ---------------------------------------------------------------------
// DMA copy-engine serialization (one explicit copy in flight per
// direction — the mechanism behind the paper's transfer pipelining).
// ---------------------------------------------------------------------

TEST_F(EngineTest, SameDirectionCopiesSerialize) {
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  // 1e4 B/us PCIe on the test device: each copy takes 10us alone.
  eng_.enqueue(raw_copy(s1, OpKind::CopyH2D, 1e5, "c1"), 0);
  eng_.enqueue(raw_copy(s2, OpKind::CopyH2D, 1e5, "c2"), 0);
  eng_.run_all();
  const auto& e = eng_.timeline().entries();
  ASSERT_EQ(e.size(), 2u);
  // Back to back at full bandwidth, not fluid-shared halves.
  EXPECT_NEAR(e[0].end - e[0].start, 10.0, 1e-9);
  EXPECT_NEAR(e[1].end - e[1].start, 10.0, 1e-9);
  EXPECT_GE(e[1].start, e[0].end);
  EXPECT_NEAR(eng_.timeline().makespan(), 20.0, 1e-9);
}

TEST_F(EngineTest, OppositeDirectionCopiesOverlap) {
  // PCIe is full duplex: H2D and D2H each own their engine.
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  eng_.enqueue(raw_copy(s1, OpKind::CopyH2D, 1e5, "up"), 0);
  eng_.enqueue(raw_copy(s2, OpKind::CopyD2H, 1e5, "down"), 0);
  eng_.run_all();
  EXPECT_NEAR(eng_.timeline().makespan(), 10.0, 1e-9);
}

TEST_F(EngineTest, CopyEngineGrabbedInCompletionOrder) {
  // Three queued copies on three streams: they drain one at a time and
  // the engine is handed over at each completion without idle gaps.
  std::vector<StreamId> streams;
  for (int i = 0; i < 3; ++i) streams.push_back(eng_.create_stream());
  for (StreamId s : streams) {
    eng_.enqueue(raw_copy(s, OpKind::CopyH2D, 5e4, "c"), 0);
  }
  eng_.run_all();
  const auto& e = eng_.timeline().entries();
  ASSERT_EQ(e.size(), 3u);
  for (std::size_t i = 1; i < e.size(); ++i) {
    EXPECT_NEAR(e[i].start, e[i - 1].end, 1e-9);
  }
  EXPECT_NEAR(eng_.timeline().makespan(), 15.0, 1e-9);
}

TEST_F(EngineTest, KernelOverlapsQueuedCopy) {
  // A kernel behind a copy on stream 1 does not block stream 2's copy
  // from queueing; the copies serialize but the kernel overlaps copy 2.
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  eng_.enqueue(raw_copy(s1, OpKind::CopyH2D, 1e5, "c1"), 0);
  eng_.enqueue(raw_kernel(s1, 10, 4, 1.0, 0, "k"), 0);
  eng_.enqueue(raw_copy(s2, OpKind::CopyH2D, 1e5, "c2"), 0);
  eng_.run_all();
  const auto& tl = eng_.timeline();
  const auto cover = tl.kernel_cover().intersect(tl.transfer_cover());
  EXPECT_NEAR(cover.measure(), 10.0, 1e-9);  // kernel fully under copy 2
  EXPECT_NEAR(tl.makespan(), 20.0, 1e-9);
}

TEST_F(EngineTest, FaultsDoNotOccupyTheCopyEngine) {
  // Fault-path migrations may proceed while an explicit copy is in
  // flight (they use the page-fault machinery, not the DMA engine).
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  eng_.enqueue(raw_copy(s1, OpKind::CopyH2D, 1e5, "copy"), 0);
  eng_.enqueue(raw_copy(s2, OpKind::Fault, 5e4, "fault"), 0);
  eng_.run_all();
  const auto& e = eng_.timeline().entries();
  ASSERT_EQ(e.size(), 2u);
  // Both start at t=0: no serialization between the two mechanisms.
  EXPECT_NEAR(e[0].start, 0.0, 1e-9);
  EXPECT_NEAR(e[1].start, 0.0, 1e-9);
}

// ---------------------------------------------------------------------
// Floating-point robustness: residual work that cannot advance the clock
// must complete instead of livelocking (regression for a real hang: a
// tiny transfer sharing bandwidth ended with ~1e-7 bytes left whose
// completion increment underflowed against now_).
// ---------------------------------------------------------------------

TEST_F(EngineTest, TinyResidualWorkCompletes) {
  // Advance the clock far, then run an op whose duration is below the
  // ulp of the clock value.
  const StreamId s1 = eng_.create_stream();
  eng_.enqueue(raw_kernel(s1, 1e9, 4, 1.0, 0, "long"), 0);
  eng_.run_all();
  eng_.enqueue(raw_copy(s1, OpKind::CopyD2H, 1e-4, "tiny"), eng_.now());
  EXPECT_NO_THROW(eng_.run_all());
  EXPECT_TRUE(eng_.all_idle());
}

// ---------------------------------------------------------------------
// Slab op storage: completed ops retire to compact records; live memory
// tracks concurrency, not history.
// ---------------------------------------------------------------------

TEST_F(EngineTest, RetiredOpsKeepCompletionRecord) {
  const OpId a = eng_.enqueue(raw_kernel(0, 10, 4, 1.0, 0, "a"), 0);
  const OpId b = eng_.enqueue(raw_kernel(0, 20, 4, 1.0, 0, "b"), 0);
  eng_.run_all();
  const Op oa = eng_.op(a);
  const Op ob = eng_.op(b);
  EXPECT_EQ(oa.state, OpState::Done);
  EXPECT_EQ(oa.kind, OpKind::Kernel);
  EXPECT_EQ(oa.stream, 0);
  EXPECT_DOUBLE_EQ(oa.start_time, 0);
  EXPECT_DOUBLE_EQ(oa.end_time, 10);
  EXPECT_DOUBLE_EQ(ob.start_time, 10);
  EXPECT_DOUBLE_EQ(ob.end_time, 30);
}

TEST_F(EngineTest, PeakResidentTracksConcurrencyNotHistory) {
  // 50 ops executed one at a time: the slab never holds more than one live
  // op (plus the occasional marker), however many have retired.
  for (int i = 0; i < 50; ++i) {
    const OpId id = eng_.enqueue(raw_kernel(0, 5, 4, 1.0), eng_.now());
    eng_.run_until_op_done(id);
  }
  EXPECT_LE(eng_.peak_resident_ops(), 2);
  // Enqueue 10 at once: peak tracks the burst.
  for (int i = 0; i < 10; ++i) {
    eng_.enqueue(raw_kernel(0, 1, 4, 1.0), eng_.now());
  }
  eng_.run_all();
  EXPECT_GE(eng_.peak_resident_ops(), 10);
}

TEST_F(EngineTest, StreamIdleObserversFireOnDrain) {
  std::vector<StreamId> drained;
  std::vector<StreamId> drained2;
  const int t1 = eng_.add_stream_idle_observer(
      [&drained](StreamId s) { drained.push_back(s); });
  const int t2 = eng_.add_stream_idle_observer(
      [&drained2](StreamId s) { drained2.push_back(s); });
  const StreamId s1 = eng_.create_stream();
  eng_.enqueue(raw_kernel(s1, 10, 4, 1.0), 0);
  eng_.enqueue(raw_kernel(s1, 10, 4, 1.0), 0);
  eng_.run_all();
  // Fires once, when the second op drains the stream — not per op; every
  // registered observer sees it.
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0], s1);
  EXPECT_EQ(drained2, drained);
  // Removal is per-token: the survivor keeps observing.
  eng_.remove_stream_idle_observer(t1);
  eng_.enqueue(raw_kernel(s1, 10, 4, 1.0), eng_.now());
  eng_.run_all();
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained2.size(), 2u);
  eng_.remove_stream_idle_observer(t2);
}

TEST_F(EngineTest, StreamIdleObserverMayUnregisterItselfMidDispatch) {
  // An observer that removes itself during its own callback must not make
  // a later observer miss the drain (nor invalidate the running closure).
  int first_calls = 0;
  int second_calls = 0;
  int t1 = 0;
  t1 = eng_.add_stream_idle_observer([&](StreamId) {
    ++first_calls;
    eng_.remove_stream_idle_observer(t1);
  });
  const int t2 =
      eng_.add_stream_idle_observer([&](StreamId) { ++second_calls; });
  eng_.enqueue(raw_kernel(0, 10, 4, 1.0), 0);
  eng_.run_all();
  eng_.enqueue(raw_kernel(0, 10, 4, 1.0), eng_.now());
  eng_.run_all();
  EXPECT_EQ(first_calls, 1);   // unregistered after the first drain
  EXPECT_EQ(second_calls, 2);  // saw both drains
  eng_.remove_stream_idle_observer(t2);
}

TEST_F(EngineTest, SolverCountersAdvance) {
  const StreamId s1 = eng_.create_stream();
  eng_.enqueue(raw_kernel(0, 10, 4, 1.0), 0);
  eng_.enqueue(raw_kernel(s1, 10, 1, 0.5), 0);
  eng_.enqueue(raw_copy(s1, OpKind::CopyH2D, 1e4), 0);
  eng_.run_all();
  EXPECT_GT(eng_.solve_count(), 0);
  // Copy completions must not charge kernel-class work: total rate
  // assignments stay below (kernels + copies) x solve passes.
  EXPECT_GE(eng_.solved_ops(), eng_.solve_count());
  EXPECT_LT(eng_.solved_ops(), eng_.solve_count() * 3);
}

TEST_F(EngineTest, StartHeapCompactionBoundsRerecordChurn) {
  // Pathological event re-record churn: a head waits on an event whose
  // completion time keeps moving into the future. Every re-record wakes
  // the head, which re-registers in the start heap, displacing its
  // previous entry into staleness — without compaction the heap grows by
  // one entry per re-record.
  const StreamId s = eng_.create_stream();
  const StreamId src = eng_.create_stream();
  const EventId ev = eng_.create_event();
  eng_.record_event(ev, src, 1e6);  // src idle: completes at record time
  eng_.wait_event(s, ev, 0);
  eng_.enqueue(raw_kernel(s, 10, 4, 1.0), 0);

  const int kRerecords = 20000;
  for (int i = 1; i <= kRerecords; ++i) {
    eng_.record_event(ev, src, 1e6 + i);
    eng_.advance_to(eng_.now());  // drain the wake: re-examines the head
  }
  // The heap stayed bounded (one live entry plus at most the compaction
  // hysteresis) instead of holding kRerecords entries.
  EXPECT_GT(eng_.start_heap_compactions(), 0);
  EXPECT_LE(eng_.start_heap_size(), 64u);
  EXPECT_LE(eng_.start_heap_stale(),
            static_cast<long>(eng_.start_heap_size()));

  // The schedule is unaffected: the head releases at the final re-record
  // time and the kernel runs to completion.
  const TimeUs end = eng_.run_all();
  EXPECT_DOUBLE_EQ(end, 1e6 + kRerecords + 10);
}

TEST_F(EngineTest, StartHeapStaleAccountingStaysConsistent) {
  // Mixed workload with future enqueue times exercising push / consume /
  // discard paths; afterwards the stale counter matches reality (zero once
  // everything drained).
  const StreamId s1 = eng_.create_stream();
  const StreamId s2 = eng_.create_stream();
  for (int i = 0; i < 40; ++i) {
    eng_.enqueue(raw_kernel(i % 2 ? s1 : s2, 2.0, 1, 0.5),
                 /*host_time=*/i * 3.0);
    eng_.advance_to(i * 1.5);
  }
  eng_.run_all();
  EXPECT_EQ(eng_.start_heap_size(), 0u);
  EXPECT_EQ(eng_.start_heap_stale(), 0);
}

TEST_F(EngineTest, StallWatchdogReportsState) {
  // A zero-rate op that can never progress trips the stall watchdog with
  // a diagnostic instead of hanging forever. The resource model floors
  // kernel and transfer rates above zero, so the only way to manufacture
  // a stuck op is a malformed one the model does not rate at all — the
  // watchdog is the safety net for exactly such modelling bugs.
  const StreamId s1 = eng_.create_stream();
  Op op;
  op.kind = OpKind::Marker;
  op.stream = s1;
  op.name = "stuck";
  op.work = 100;  // a marker with work: no rate will ever be assigned
  eng_.enqueue(op, 0);
  try {
    eng_.run_all();
    FAIL() << "expected stall or deadlock report";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stuck"), std::string::npos);
  }
}

}  // namespace
}  // namespace psched::sim
