#include <gtest/gtest.h>

#include "sim/interval.hpp"

namespace psched::sim {
namespace {

TEST(Interval, LengthAndEmpty) {
  EXPECT_DOUBLE_EQ((Interval{2, 5}).length(), 3);
  EXPECT_TRUE((Interval{5, 5}).empty());
  EXPECT_TRUE((Interval{6, 5}).empty());
  EXPECT_DOUBLE_EQ((Interval{6, 5}).length(), 0);
}

TEST(IntervalSet, AssignNormalizesOverlaps) {
  IntervalSet s({{0, 2}, {1, 3}, {5, 6}});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, 3}));
  EXPECT_EQ(s.intervals()[1], (Interval{5, 6}));
  EXPECT_DOUBLE_EQ(s.measure(), 4);
}

TEST(IntervalSet, AssignDropsEmpty) {
  IntervalSet s({{3, 3}, {4, 2}});
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.measure(), 0);
}

TEST(IntervalSet, AssignMergesTouching) {
  IntervalSet s({{0, 1}, {1, 2}});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, 2}));
}

TEST(IntervalSet, AddMergesNeighbours) {
  IntervalSet s;
  s.add({0, 1});
  s.add({2, 3});
  s.add({0.5, 2.5});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.intervals()[0], (Interval{0, 3}));
}

TEST(IntervalSet, AddDisjointKeepsOrder) {
  IntervalSet s;
  s.add({5, 6});
  s.add({0, 1});
  s.add({2, 3});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].begin, 0);
  EXPECT_DOUBLE_EQ(s.intervals()[1].begin, 2);
  EXPECT_DOUBLE_EQ(s.intervals()[2].begin, 5);
}

TEST(IntervalSet, IntersectionMeasure) {
  IntervalSet s({{0, 10}, {20, 30}});
  EXPECT_DOUBLE_EQ(s.intersection_measure({5, 25}), 10);   // 5 + 5
  EXPECT_DOUBLE_EQ(s.intersection_measure({10, 20}), 0);   // gap
  EXPECT_DOUBLE_EQ(s.intersection_measure({-5, 40}), 20);  // everything
  EXPECT_DOUBLE_EQ(s.intersection_measure({3, 3}), 0);     // empty probe
}

TEST(IntervalSet, Intersect) {
  IntervalSet a({{0, 10}, {20, 30}});
  IntervalSet b({{5, 25}});
  IntervalSet c = a.intersect(b);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.intervals()[0], (Interval{5, 10}));
  EXPECT_EQ(c.intervals()[1], (Interval{20, 25}));
}

TEST(IntervalSet, IntersectEmpty) {
  IntervalSet a({{0, 10}});
  IntervalSet b;
  EXPECT_TRUE(a.intersect(b).empty());
  EXPECT_TRUE(b.intersect(a).empty());
}

TEST(IntervalSet, Unite) {
  IntervalSet a({{0, 2}, {8, 10}});
  IntervalSet b({{1, 9}});
  IntervalSet c = a.unite(b);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.intervals()[0], (Interval{0, 10}));
}

TEST(IntervalSet, ContainsPoint) {
  IntervalSet s({{0, 1}, {2, 3}});
  EXPECT_TRUE(s.contains_point(0));
  EXPECT_TRUE(s.contains_point(0.5));
  EXPECT_FALSE(s.contains_point(1));  // half-open
  EXPECT_FALSE(s.contains_point(1.5));
  EXPECT_TRUE(s.contains_point(2.9));
  EXPECT_FALSE(s.contains_point(3));
  EXPECT_FALSE(s.contains_point(-1));
}

}  // namespace
}  // namespace psched::sim
