// GpuRuntime transactional batch API: begin_submit/commit semantics,
// implicit flushes at host observation points, batched TaskGraph replay,
// and per-device residency accounting surfaced by the runtime.
#include <gtest/gtest.h>

#include <vector>

#include "sim/graph.hpp"
#include "sim/machine.hpp"
#include "sim/runtime.hpp"

namespace psched::sim {
namespace {

LaunchSpec simple_kernel(const std::string& name, std::vector<ArrayUse> arrays,
                         double flops_sp = 1e6) {
  LaunchSpec s;
  s.name = name;
  s.config = LaunchConfig::linear(16, 256);
  s.profile.flops_sp = flops_sp;
  s.arrays = std::move(arrays);
  return s;
}

class BatchRuntimeTest : public ::testing::Test {
 protected:
  GpuRuntime rt_{DeviceSpec::test_device()};
};

TEST_F(BatchRuntimeTest, OpsFreezeUntilCommitThenRun) {
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.begin_submit();
  EXPECT_TRUE(rt_.submitting());
  const OpId k = rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  EXPECT_NE(k, kInvalidOp);  // ids exist immediately (eager ingest)
  EXPECT_FALSE(rt_.engine().op_done(k));
  EXPECT_EQ(rt_.engine().op(k).state, OpState::Queued);  // frozen
  const std::size_t n = rt_.commit();
  EXPECT_GE(n, 1u);
  EXPECT_FALSE(rt_.submitting());
  rt_.synchronize_device();
  EXPECT_TRUE(rt_.engine().op_done(k));
  EXPECT_EQ(rt_.batch_commits(), 1);
  EXPECT_GE(rt_.batched_ops(), 1);
}

TEST_F(BatchRuntimeTest, BatchedCallsAreCheaperOnTheHostClock) {
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.begin_submit();
  const TimeUs t0 = rt_.now();
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  EXPECT_DOUBLE_EQ(rt_.now() - t0, GpuRuntime::kBatchedCallCpuOverheadUs);
  rt_.commit();
  rt_.synchronize_device();
}

TEST_F(BatchRuntimeTest, BlockingCallsFlushTheOpenBatch) {
  const ArrayId a = rt_.alloc(1000, "a");
  bool ran = false;
  LaunchSpec s = simple_kernel("k", {{a, true}});
  s.functional = [&ran] { ran = true; };
  rt_.begin_submit();
  rt_.launch(kDefaultStream, s);
  // synchronize_device flushes the open transaction and drains it; the
  // explicit batch bracket stays open for subsequent calls.
  rt_.synchronize_device();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(rt_.submitting());
  const ArrayId b = rt_.alloc(1000, "b");
  rt_.launch(kDefaultStream, simple_kernel("k2", {{b, true}}));
  rt_.commit();
  rt_.synchronize_device();
  EXPECT_EQ(rt_.batch_commits(), 2);  // implicit flush + explicit commit
}

TEST_F(BatchRuntimeTest, BatchedRunMatchesPerCallStructureAndBytes) {
  // The same two-stream program driven per-call and batched: identical op
  // sequence (kinds, names, streams), identical byte counters; the batched
  // makespan is never worse (issue overhead compresses).
  auto drive = [](GpuRuntime& rt, bool batched) {
    const StreamId s1 = rt.create_stream();
    const StreamId s2 = rt.create_stream();
    const ArrayId a = rt.alloc(20000, "a");
    const ArrayId b = rt.alloc(30000, "b");
    rt.host_write(a);
    rt.host_write(b);
    const EventId ev = rt.create_event();
    if (batched) rt.begin_submit();
    rt.mem_prefetch_async(a, s1);
    rt.launch(s1, simple_kernel("k1", {{a, false}}));
    rt.record_event(ev, s1);
    rt.stream_wait_event(s2, ev);
    rt.launch(s2, simple_kernel("k2", {{a, false}, {b, true}}));
    if (batched) rt.commit();
    rt.synchronize_device();
  };
  GpuRuntime per_call(DeviceSpec::test_device());
  drive(per_call, false);
  GpuRuntime batched(DeviceSpec::test_device());
  drive(batched, true);

  EXPECT_DOUBLE_EQ(batched.bytes_h2d(), per_call.bytes_h2d());
  EXPECT_DOUBLE_EQ(batched.bytes_faulted(), per_call.bytes_faulted());
  EXPECT_DOUBLE_EQ(batched.bytes_d2h(), per_call.bytes_d2h());

  const auto& pc = per_call.timeline().entries();
  const auto& ba = batched.timeline().entries();
  ASSERT_EQ(pc.size(), ba.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    EXPECT_EQ(ba[i].kind, pc[i].kind) << i;
    EXPECT_EQ(ba[i].name, pc[i].name) << i;
    EXPECT_EQ(ba[i].stream, pc[i].stream) << i;
  }
  EXPECT_LE(batched.timeline().makespan(),
            per_call.timeline().makespan() + 1e-9);
}

TEST_F(BatchRuntimeTest, CaptureAndBatchAreExclusive) {
  TaskGraph g;
  rt_.begin_submit();
  EXPECT_THROW(rt_.begin_capture(g), ApiError);
  rt_.commit();
  rt_.begin_capture(g);
  EXPECT_THROW(rt_.begin_submit(), ApiError);
  rt_.end_capture();
}

TEST_F(BatchRuntimeTest, BatchBracketMisuseThrows) {
  EXPECT_THROW((void)rt_.commit(), ApiError);
  rt_.begin_submit();
  EXPECT_THROW(rt_.begin_submit(), ApiError);
  rt_.commit();
}

// --- batched TaskGraph replay ---

TEST_F(BatchRuntimeTest, GraphReplayModesAgreeOnStructureAndBytes) {
  auto run_graph = [](TaskGraph::Replay replay) {
    GpuRuntime rt(DeviceSpec::test_device());
    const ArrayId a = rt.alloc(10000, "a");
    const ArrayId b = rt.alloc(10000, "b");
    rt.host_write(a);
    rt.host_write(b);
    TaskGraph g;
    const auto root = g.add_kernel(simple_kernel("root", {{a, true}}));
    const auto left = g.add_kernel(simple_kernel("left", {{a, false}}));
    const auto right = g.add_kernel(simple_kernel("right", {{b, true}}));
    const auto join =
        g.add_kernel(simple_kernel("join", {{a, false}, {b, false}}));
    g.add_dependency(root, left);
    g.add_dependency(root, right);
    g.add_dependency(left, join);
    g.add_dependency(right, join);
    auto exec = g.instantiate(rt);
    exec.launch(rt, replay);
    rt.synchronize_device();
    struct Result {
      double makespan;
      double faulted;
      std::vector<std::string> kernels;
      std::vector<TimelineEntry> entries;
    } r;
    r.makespan = rt.timeline().makespan();
    r.faulted = rt.bytes_faulted();
    for (const auto& e : rt.timeline().entries()) {
      if (e.kind == OpKind::Kernel) r.kernels.push_back(e.name);
      r.entries.push_back(e);
    }
    return r;
  };
  const auto batched = run_graph(TaskGraph::Replay::Batched);
  const auto per_call = run_graph(TaskGraph::Replay::PerCall);
  EXPECT_EQ(batched.kernels, per_call.kernels);
  EXPECT_DOUBLE_EQ(batched.faulted, per_call.faulted);
  // One transaction per launch compresses per-node issue overhead.
  EXPECT_LE(batched.makespan, per_call.makespan + 1e-9);
  // Dependencies still hold under batched replay.
  TimeUs root_end = 0, join_start = 0;
  for (const auto& e : batched.entries) {
    if (e.name == "root") root_end = e.end;
    if (e.name == "join") join_start = e.start;
  }
  EXPECT_GE(join_start, root_end);
}

// --- per-device residency accounting through the runtime ---

TEST_F(BatchRuntimeTest, SingleDeviceResidencyCounters) {
  const ArrayId a = rt_.alloc(12345, "a");
  rt_.host_write(a);
  EXPECT_EQ(rt_.device_bytes_used(0), 0u);
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, false}}));
  rt_.synchronize_device();
  EXPECT_EQ(rt_.device_bytes_used(0), 12345u);
  EXPECT_EQ(rt_.device_bytes_peak(0), 12345u);
  rt_.free_array(a);
  EXPECT_EQ(rt_.device_bytes_used(0), 0u);
  EXPECT_EQ(rt_.device_bytes_peak(0), 12345u);
}

TEST_F(BatchRuntimeTest, OverCapacityMigrationEvictsInsteadOfThrowing) {
  // Two 60k arrays against a 100k device: the second migration stalls on
  // the first launch's in-flight ops, pages `a` out, and completes —
  // oversubscription is a priced event, not an error.
  DeviceSpec spec = DeviceSpec::test_device();
  spec.memory_bytes = 100000;
  GpuRuntime rt{Machine::uniform(spec, 2)};
  const ArrayId a = rt.alloc(60000, "a");
  const ArrayId b = rt.alloc(60000, "b");
  rt.host_write(a);
  rt.host_write(b);
  rt.launch(kDefaultStream, simple_kernel("k1", {{a, false}}));
  EXPECT_NO_THROW(
      rt.launch(kDefaultStream, simple_kernel("k2", {{b, false}})));
  rt.synchronize_device();
  EXPECT_EQ(rt.device_bytes_evicted(0), 60000u);  // `a` paged out
  EXPECT_EQ(rt.device_bytes_used(0), 60000u);     // only `b` resident

  // OutOfMemoryError remains for a single op that can never fit.
  const ArrayId big = rt.alloc(120000, "big");
  rt.host_write(big);
  EXPECT_THROW(rt.launch(kDefaultStream, simple_kernel("k3", {{big, false}})),
               OutOfMemoryError);
}

}  // namespace
}  // namespace psched::sim
