// Multi-GPU engine scenarios: per-device solver domains, peer-link
// CopyP2P classes, and solver-work isolation across the roster.
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/synthetic.hpp"
#include "sim_test_util.hpp"

namespace psched::sim {
namespace {

using test::raw_copy;
using test::raw_kernel;

Machine two_gpus(bool nvlink = true) {
  return Machine::uniform(DeviceSpec::test_device(), 2, nvlink);
}

// --- Machine roster ---

TEST(Machine, SingleRosterAndDeviceAccess) {
  const Machine m = Machine::single(DeviceSpec::test_device());
  EXPECT_EQ(m.num_devices(), 1);
  EXPECT_EQ(m.device(0).name, "TestGPU");
  EXPECT_THROW((void)m.device(1), ApiError);
}

TEST(Machine, PeerLinkDirectAndStaged) {
  Machine m = Machine::uniform(DeviceSpec::test_device(), 3);
  // No direct links: peer bandwidth stages through the host at the PCIe
  // bottleneck (test device: 10 GB/s).
  EXPECT_FALSE(m.has_peer_link(0, 1));
  EXPECT_DOUBLE_EQ(m.p2p_bw_gbps(0, 1), 10.0);
  m.set_peer_link(0, 1, 20.0);
  EXPECT_TRUE(m.has_peer_link(0, 1));
  EXPECT_TRUE(m.has_peer_link(1, 0));
  EXPECT_DOUBLE_EQ(m.p2p_bw_gbps(1, 0), 20.0);
  EXPECT_DOUBLE_EQ(m.p2p_bw_gbps(1, 2), 10.0);  // still staged
  EXPECT_THROW(m.set_peer_link(0, 0, 20.0), ApiError);
}

TEST(Machine, UniformNvlinkAllPairs) {
  const Machine m = two_gpus();
  EXPECT_TRUE(m.has_peer_link(0, 1));
  // test_device nvlink: 20 GB/s == 2e4 bytes/us per direction.
  EXPECT_DOUBLE_EQ(m.p2p_bytes_per_us(0, 1), 2e4);
}

// --- engine topology ---

TEST(MultiDeviceEngine, StreamsCarryTheirDevice) {
  Engine eng(two_gpus());
  EXPECT_EQ(eng.num_devices(), 2);
  EXPECT_EQ(eng.stream_device(kDefaultStream), 0);
  const StreamId s1 = eng.create_stream(1);
  EXPECT_EQ(eng.stream_device(s1), 1);
  EXPECT_THROW((void)eng.create_stream(2), ApiError);
  EXPECT_THROW((void)eng.stream_device(99), ApiError);
}

TEST(MultiDeviceEngine, P2PNeedsValidPeer) {
  Engine eng(two_gpus());
  const StreamId s1 = eng.create_stream(1);
  Op op = raw_copy(s1, OpKind::CopyP2P, 1e4, "p2p");
  EXPECT_THROW((void)eng.enqueue(op, 0), ApiError);  // no peer set
  op.peer = 1;  // == destination device
  EXPECT_THROW((void)eng.enqueue(op, 0), ApiError);
  op.peer = 0;
  EXPECT_NO_THROW((void)eng.enqueue(std::move(op), 0));
  eng.run_all();
}

// --- acceptance scenario (a): independent branches on different devices
// overlap in the virtual timeline ---

TEST(MultiDeviceEngine, FullDeviceKernelsOverlapAcrossDevices) {
  Engine eng(two_gpus());
  const StreamId s1 = eng.create_stream(1);
  // Two full-device kernels. On ONE device they would space-share to
  // ~200us each; on separate devices both finish at 100us.
  const OpId a = eng.enqueue(raw_kernel(kDefaultStream, 100, 4, 1.0), 0);
  const OpId b = eng.enqueue(raw_kernel(s1, 100, 4, 1.0), 0);
  eng.run_all();
  EXPECT_DOUBLE_EQ(eng.op(a).end_time, 100);
  EXPECT_DOUBLE_EQ(eng.op(b).end_time, 100);
  // The timeline records the device and the intervals overlap.
  const auto& entries = eng.timeline().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].device + entries[1].device, 1);  // one on each
  EXPECT_LT(std::max(entries[0].start, entries[1].start),
            std::min(entries[0].end, entries[1].end));
}

// --- acceptance scenario (b): a cross-device dependency serviced by a
// CopyP2P op on the correct link class ---

TEST(MultiDeviceEngine, CrossDeviceDependencyViaP2PLink) {
  Engine eng(two_gpus());
  const StreamId s1 = eng.create_stream(1);
  // Producer kernel on device 0, then a peer copy pulling its output to
  // device 1, then a consumer kernel on device 1.
  const OpId prod = eng.enqueue(raw_kernel(kDefaultStream, 50, 4, 1.0), 0);
  const EventId ev = eng.create_event();
  eng.record_event(ev, kDefaultStream, 0);
  eng.wait_event(s1, ev, 0);
  Op copy = raw_copy(s1, OpKind::CopyP2P, 4e4, "p2p:x");
  copy.peer = 0;
  const OpId xfer = eng.enqueue(std::move(copy), 0);
  const OpId cons = eng.enqueue(raw_kernel(s1, 10, 4, 1.0), 0);
  eng.run_all();

  // The copy starts when the producer finishes and moves 4e4 bytes over
  // the 2e4 bytes/us NVLink: 2us on the (0 -> 1) link class.
  EXPECT_DOUBLE_EQ(eng.op(prod).end_time, 50);
  EXPECT_DOUBLE_EQ(eng.op(xfer).start_time, 50);
  EXPECT_DOUBLE_EQ(eng.op(xfer).end_time, 52);
  EXPECT_DOUBLE_EQ(eng.op(cons).start_time, 52);

  const auto& entries = eng.timeline().entries();
  const auto it = std::find_if(
      entries.begin(), entries.end(),
      [](const TimelineEntry& e) { return e.kind == OpKind::CopyP2P; });
  ASSERT_NE(it, entries.end());
  EXPECT_EQ(it->device, 1);  // destination (the stream's device)
  EXPECT_EQ(it->peer, 0);    // source
  // Exactly the (0 -> 1) link class was solved; the reverse link never.
  EXPECT_EQ(eng.link_solve_count(0, 1), 1);
  EXPECT_EQ(eng.link_solve_count(1, 0), 0);
}

TEST(MultiDeviceEngine, StagedP2PUsesPcieBottleneck) {
  Engine eng(two_gpus(/*nvlink=*/false));
  const StreamId s1 = eng.create_stream(1);
  Op copy = raw_copy(s1, OpKind::CopyP2P, 4e4, "p2p:x");
  copy.peer = 0;
  const OpId xfer = eng.enqueue(std::move(copy), 0);
  eng.run_all();
  // Staged through host at min(PCIe, PCIe) = 1e4 bytes/us: 4us.
  EXPECT_DOUBLE_EQ(eng.op(xfer).end_time, 4);
}

TEST(MultiDeviceEngine, P2PCopiesSerializePerLinkAndShareBandwidth) {
  Engine eng(Machine::uniform(DeviceSpec::test_device(), 3, true));
  const StreamId a = eng.create_stream(1);
  const StreamId b = eng.create_stream(1);
  const StreamId c = eng.create_stream(2);
  // Two copies on the SAME directed link (0 -> 1) from different streams:
  // the link's DMA engine serializes them.
  Op c1 = raw_copy(a, OpKind::CopyP2P, 2e4, "l01a");
  c1.peer = 0;
  Op c2 = raw_copy(b, OpKind::CopyP2P, 2e4, "l01b");
  c2.peer = 0;
  // One copy on a DIFFERENT link (0 -> 2): fully concurrent.
  Op c3 = raw_copy(c, OpKind::CopyP2P, 2e4, "l02");
  c3.peer = 0;
  const OpId i1 = eng.enqueue(std::move(c1), 0);
  const OpId i2 = eng.enqueue(std::move(c2), 0);
  const OpId i3 = eng.enqueue(std::move(c3), 0);
  eng.run_all();
  EXPECT_DOUBLE_EQ(eng.op(i1).end_time, 1);
  EXPECT_DOUBLE_EQ(eng.op(i2).start_time, 1);  // serialized on the link
  EXPECT_DOUBLE_EQ(eng.op(i2).end_time, 2);
  EXPECT_DOUBLE_EQ(eng.op(i3).end_time, 1);    // other link: concurrent
}

// --- acceptance scenario (c): solver-work isolation — churn on device 0
// causes zero solve_class calls for device 1's kernel class ---

TEST(MultiDeviceEngine, SolverWorkIsolatedPerDevice) {
  Engine eng(two_gpus());
  const StreamId s1 = eng.create_stream(1);
  // A long kernel occupies device 1 for the whole horizon.
  const OpId longk = eng.enqueue(raw_kernel(s1, 5000, 2, 1.0), 0);
  eng.advance_to(1);  // it is running: its class was solved exactly once
  ASSERT_FALSE(eng.op_done(longk));
  const long dev1_solves_before = eng.class_solve_count(1, OpKind::Kernel);
  EXPECT_EQ(dev1_solves_before, 1);

  // Heavy membership churn on device 0: kernels, both copy directions and
  // faults arriving and completing while device 1's kernel just runs.
  for (int s = 0; s < 4; ++s) eng.create_stream(0);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<StreamId>(2 + i % 4);
    if (i % 3 == 0) {
      eng.enqueue(raw_copy(s, i % 2 ? OpKind::CopyH2D : OpKind::CopyD2H,
                           5e3, "cp"),
                  eng.now());
    } else {
      eng.enqueue(raw_kernel(s, 3.0 + i % 5, 1 + i % 3, 0.75), eng.now());
    }
  }
  // Drain the churn but stop before the long kernel finishes.
  eng.advance_to(4000);
  ASSERT_FALSE(eng.op_done(longk));

  // Device 0 churned hard; device 1's kernel class was never re-solved.
  EXPECT_GT(eng.class_solve_count(0, OpKind::Kernel), 50);
  EXPECT_GT(eng.class_solve_count(0, OpKind::CopyH2D), 10);
  EXPECT_EQ(eng.class_solve_count(1, OpKind::Kernel), dev1_solves_before);
  EXPECT_EQ(eng.class_solve_count(1, OpKind::CopyH2D), 0);
  eng.run_all();
}

// --- the multi-device synthetic DAG drains on any roster ---

TEST(MultiDeviceEngine, MultiDeviceContentionDagDrains) {
  for (const int ndev : {1, 2, 4}) {
    Engine eng(Machine::uniform(DeviceSpec::test_device(), ndev, ndev > 1));
    build_multi_device_contention_dag(eng, 600, 12);
    const TimeUs end = eng.run_all();
    EXPECT_GT(end, 0);
    EXPECT_TRUE(eng.all_idle());
    if (ndev > 1) {
      // The generator exercises the peer links.
      long p2p = 0;
      for (const auto& e : eng.timeline().entries()) {
        p2p += e.kind == OpKind::CopyP2P;
      }
      EXPECT_GT(p2p, 0);
    }
  }
}

// With one device, the multi-device generator produces the exact same
// schedule as the PR-1 contention DAG (the sweep's 1-GPU rows stay
// comparable with the headline figure).
TEST(MultiDeviceEngine, SingleDeviceGeneratorMatchesLegacy) {
  Engine legacy(DeviceSpec::test_device());
  build_contention_dag(legacy, 400, 8);
  legacy.run_all();
  Engine multi(Machine::single(DeviceSpec::test_device()));
  build_multi_device_contention_dag(multi, 400, 8);
  multi.run_all();
  const auto& a = legacy.timeline().entries();
  const auto& b = multi.timeline().entries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end);
  }
}

}  // namespace
}  // namespace psched::sim
