// Concurrent ingestion front-end (sim/ingest_queue.hpp): MPSC submission
// queues, per-shard ingest threads, drain determinism, monotone host-time
// clamping, completion tokens, structured transaction-error recovery, and
// the tenant-handle routing surface. The multi-producer tests double as
// the ThreadSanitizer workload (`ctest -L ingest` under the tsan preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "sim/ingest_queue.hpp"
#include "sim/machine.hpp"
#include "sim/runtime.hpp"
#include "sim/tenant.hpp"

namespace psched::sim {
namespace {

LaunchSpec simple_kernel(const std::string& name, std::vector<ArrayUse> arrays,
                         double flops_sp = 1e6) {
  LaunchSpec s;
  s.name = name;
  s.config = LaunchConfig::linear(16, 256);
  s.profile.flops_sp = flops_sp;
  s.arrays = std::move(arrays);
  return s;
}

/// A raw engine-level kernel op (the queue's lowest-level item kind): the
/// demand derivation mirrors GpuRuntime::launch, minus arrays/staging.
Op raw_kernel(GpuRuntime& rt, StreamId stream, const std::string& name,
              double flops_sp = 1e6) {
  const auto cfg = LaunchConfig::linear(16, 256);
  KernelProfile prof;
  prof.flops_sp = flops_sp;
  const KernelDemand d =
      rt.engine().model(rt.stream_device(stream)).kernel_demand(cfg, prof);
  Op op;
  op.kind = OpKind::Kernel;
  op.stream = stream;
  op.name = name;
  op.cfg = cfg;
  op.prof = prof;
  op.sm_demand = d.sm_demand;
  op.occupancy = d.occupancy;
  op.bw_need = d.bw_need;
  op.work = d.solo_us;
  return op;
}

struct Entry {
  std::string name;
  TimeUs start;
  TimeUs end;
};

/// Kernel entries grouped per stream in timeline order.
std::map<StreamId, std::vector<Entry>> kernel_projection(GpuRuntime& rt) {
  std::map<StreamId, std::vector<Entry>> out;
  for (const auto& e : rt.timeline().entries()) {
    if (e.kind != OpKind::Kernel) continue;
    out[e.stream].push_back({e.name, e.start, e.end});
  }
  return out;
}

// ---------------------------------------------------------------------
// Satellite: structured transaction-misuse errors (recoverable).
// ---------------------------------------------------------------------

TEST(TransactionErrorTest, BeginWhileOpenIsStructuredAndRecoverable) {
  GpuRuntime rt(DeviceSpec::test_device());
  const StreamId s = rt.create_stream();
  Engine& eng = rt.engine();

  eng.begin_transaction(rt.now());
  eng.enqueue(raw_kernel(rt, s, "k0"), rt.now());
  try {
    eng.begin_transaction(rt.now());
    FAIL() << "begin_transaction with a transaction open must throw";
  } catch (const TransactionError& e) {
    EXPECT_EQ(e.kind, TransactionError::Kind::AlreadyOpen);
    EXPECT_STREQ(e.call, "begin_transaction");
    EXPECT_EQ(e.pending_ops, 1u);
    EXPECT_NE(std::string(e.what()).find("already open"), std::string::npos);
  }
  // The error left the open transaction intact: committing still works.
  EXPECT_TRUE(eng.in_transaction());
  EXPECT_EQ(eng.commit_transaction(), 1u);
  rt.synchronize_device();
}

TEST(TransactionErrorTest, CommitAndIngestWithoutOpenAreStructured) {
  GpuRuntime rt(DeviceSpec::test_device());
  Engine& eng = rt.engine();
  try {
    eng.commit_transaction();
    FAIL() << "commit_transaction with no transaction must throw";
  } catch (const TransactionError& e) {
    EXPECT_EQ(e.kind, TransactionError::Kind::NotOpen);
    EXPECT_STREQ(e.call, "commit_transaction");
  }
  // TransactionError is an ApiError: generic handlers keep working.
  EXPECT_THROW(eng.commit_transaction(), ApiError);
  EXPECT_FALSE(eng.in_transaction());
}

// ---------------------------------------------------------------------
// Tentpole: determinism of the queued path.
// ---------------------------------------------------------------------

// Headline guarantee, runtime level: a single producer driving the full
// async API through the queue (task items) is bit-identical to the same
// call sequence submitted directly as an explicit batch.
TEST(IngestQueueTest, SingleProducerTaskPathBitIdenticalToDirectBatch) {
  const auto setup = [](GpuRuntime& rt, StreamId& s1, StreamId& s2,
                        ArrayId& a, ArrayId& b, EventId& ev) {
    s1 = rt.create_stream();
    s2 = rt.create_stream();
    a = rt.alloc(20000, "a");
    b = rt.alloc(30000, "b");
    rt.host_write(a);
    rt.host_write(b);
    ev = rt.create_event();
  };

  GpuRuntime direct(DeviceSpec::test_device());
  {
    StreamId s1, s2;
    ArrayId a, b;
    EventId ev;
    setup(direct, s1, s2, a, b, ev);
    direct.begin_submit();
    direct.mem_prefetch_async(a, s1);
    direct.launch(s1, simple_kernel("k1", {{a, false}}));
    direct.record_event(ev, s1);
    direct.stream_wait_event(s2, ev);
    direct.launch(s2, simple_kernel("k2", {{a, false}, {b, true}}));
    direct.commit();
    direct.synchronize_device();
  }

  GpuRuntime queued(DeviceSpec::test_device());
  {
    StreamId s1, s2;
    ArrayId a, b;
    EventId ev;
    setup(queued, s1, s2, a, b, ev);
    IngestService svc(queued);
    svc.post_task(0, [=](GpuRuntime& g) { g.mem_prefetch_async(a, s1); });
    svc.post_task(0, [=](GpuRuntime& g) {
      g.launch(s1, simple_kernel("k1", {{a, false}}));
    });
    svc.post_task(0, [=](GpuRuntime& g) { g.record_event(ev, s1); });
    svc.post_task(0, [=](GpuRuntime& g) { g.stream_wait_event(s2, ev); });
    svc.post_task(0, [=](GpuRuntime& g) {
      g.launch(s2, simple_kernel("k2", {{a, false}, {b, true}}));
    });
    svc.flush_and_wait(0);
    queued.synchronize_device();
  }

  const auto& de = direct.timeline().entries();
  const auto& qe = queued.timeline().entries();
  ASSERT_EQ(de.size(), qe.size());
  for (std::size_t i = 0; i < de.size(); ++i) {
    EXPECT_EQ(qe[i].kind, de[i].kind) << i;
    EXPECT_EQ(qe[i].name, de[i].name) << i;
    EXPECT_EQ(qe[i].stream, de[i].stream) << i;
    EXPECT_DOUBLE_EQ(qe[i].start, de[i].start) << i;
    EXPECT_DOUBLE_EQ(qe[i].end, de[i].end) << i;
  }
  EXPECT_DOUBLE_EQ(queued.timeline().makespan(),
                   direct.timeline().makespan());
  EXPECT_DOUBLE_EQ(queued.now(), direct.now());
}

// Satellite: out-of-order producer host times are clamped against the
// shard's monotone floor, deterministically — any submission order yields
// a schedule bit-identical to a direct drive applying the same clamp in
// the same order.
TEST(IngestQueueTest, MonotoneClampDeterministicAcrossShuffledOrders) {
  std::vector<TimeUs> times = {5, 40, 10, 80, 20, 80, 3, 55, 7, 120};
  for (const unsigned seed : {1u, 2u, 3u}) {
    std::vector<std::size_t> order(times.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::mt19937 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);

    GpuRuntime queued(DeviceSpec::test_device());
    const StreamId qs = queued.create_stream();
    long clamped = 0;
    {
      IngestService svc(queued);
      for (const std::size_t i : order) {
        svc.post(0, raw_kernel(queued, qs, "k" + std::to_string(i)),
                 times[i]);
      }
      svc.flush_and_wait(0);
      clamped = svc.stats().clamped;
    }
    queued.synchronize_device();

    GpuRuntime direct(DeviceSpec::test_device());
    const StreamId ds = direct.create_stream();
    direct.begin_submit();
    TimeUs floor = 0;
    long expect_clamped = 0;
    Engine& eng = direct.engine();
    for (const std::size_t i : order) {
      TimeUs t = times[i];
      if (t < floor) {
        t = floor;
        ++expect_clamped;
      }
      floor = t;
      if (!eng.in_transaction()) eng.begin_transaction(t);
      eng.enqueue(raw_kernel(direct, ds, "k" + std::to_string(i)), t);
    }
    direct.commit();
    direct.synchronize_device();

    EXPECT_EQ(clamped, expect_clamped) << "seed " << seed;
    const auto& de = direct.timeline().entries();
    const auto& qe = queued.timeline().entries();
    ASSERT_EQ(de.size(), qe.size()) << "seed " << seed;
    for (std::size_t i = 0; i < de.size(); ++i) {
      EXPECT_EQ(qe[i].name, de[i].name) << "seed " << seed << " entry " << i;
      EXPECT_DOUBLE_EQ(qe[i].start, de[i].start)
          << "seed " << seed << " entry " << i;
      EXPECT_DOUBLE_EQ(qe[i].end, de[i].end)
          << "seed " << seed << " entry " << i;
    }
  }
}

// Satellite + TSan meat: real concurrent producers with out-of-order host
// stamps. Every producer leads with a sentinel stamp that dominates the
// rest, so the shard floor clamps all work to one instant regardless of
// interleaving — the per-stream schedule must then be identical to a
// single-threaded canonical submission order.
TEST(IngestQueueTest, MultiProducerClampIsInterleavingInvariant) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  constexpr TimeUs kSentinel = 1000;

  const auto drive = [&](bool threaded) {
    auto rt = std::make_unique<GpuRuntime>(DeviceSpec::test_device());
    std::vector<StreamId> streams;
    for (int p = 0; p < kProducers; ++p) {
      streams.push_back(rt->create_stream());
    }
    {
      IngestService svc(*rt);
      const auto produce = [&](int p) {
        for (int j = 0; j < kPerProducer; ++j) {
          // First item at the sentinel, the rest below it: every stamp
          // this producer emits after the first is non-monotone and must
          // clamp to exactly kSentinel on the shared shard.
          const TimeUs t = j == 0 ? kSentinel : kSentinel - 10 * j;
          svc.post(0,
                   raw_kernel(*rt, streams[static_cast<std::size_t>(p)],
                              "k" + std::to_string(j) + "@p" +
                                  std::to_string(p),
                              1e6 * (1 + j)),
                   t);
        }
      };
      if (threaded) {
        std::vector<std::thread> producers;
        producers.reserve(kProducers);
        for (int p = 0; p < kProducers; ++p) {
          producers.emplace_back(produce, p);
        }
        for (auto& th : producers) th.join();
      } else {
        for (int p = 0; p < kProducers; ++p) produce(p);
      }
      svc.flush_and_wait(0);
    }
    rt->synchronize_device();
    auto projection = kernel_projection(*rt);
    return std::make_pair(std::move(rt), std::move(projection));
  };

  const auto [ref_rt, ref] = drive(false);
  const auto [con_rt, con] = drive(true);

  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kProducers));
  ASSERT_EQ(con.size(), ref.size());
  for (const auto& [stream, ref_entries] : ref) {
    const auto it = con.find(stream);
    ASSERT_NE(it, con.end()) << "stream " << stream;
    const auto& con_entries = it->second;
    ASSERT_EQ(con_entries.size(), ref_entries.size()) << "stream " << stream;
    for (std::size_t i = 0; i < ref_entries.size(); ++i) {
      EXPECT_EQ(con_entries[i].name, ref_entries[i].name)
          << "stream " << stream << " entry " << i;
      EXPECT_DOUBLE_EQ(con_entries[i].start, ref_entries[i].start)
          << "stream " << stream << " entry " << i;
      EXPECT_DOUBLE_EQ(con_entries[i].end, ref_entries[i].end)
          << "stream " << stream << " entry " << i;
    }
    // All starts sit at/after the sentinel: the clamp really fired.
    for (const Entry& e : con_entries) EXPECT_GE(e.start, kSentinel);
  }
}

// ---------------------------------------------------------------------
// Tokens, flush points, error recovery.
// ---------------------------------------------------------------------

TEST(IngestQueueTest, TokensResolveWithOpIdsAfterCommit) {
  GpuRuntime rt(DeviceSpec::test_device());
  const StreamId s = rt.create_stream();
  IngestService svc(rt);
  std::vector<std::future<OpId>> tokens;
  for (int i = 0; i < 8; ++i) {
    tokens.push_back(svc.submit(
        0, raw_kernel(rt, s, "k" + std::to_string(i)), rt.now()));
  }
  svc.flush_and_wait(0);
  std::vector<OpId> ids;
  for (auto& tok : tokens) ids.push_back(tok.get());
  rt.synchronize_device();
  for (const OpId id : ids) {
    EXPECT_NE(id, kInvalidOp);
    EXPECT_TRUE(rt.engine().op_done(id));
  }
  const IngestStats st = svc.stats();
  EXPECT_GE(st.items, 8);
  EXPECT_GE(st.ops, 8);
  EXPECT_GE(st.batches, 1);
  EXPECT_EQ(st.errors, 0);
}

TEST(IngestQueueTest, BlockingCallsFlushTheQueueImplicitly) {
  GpuRuntime rt(DeviceSpec::test_device());
  const StreamId s = rt.create_stream();
  const ArrayId a = rt.alloc(1000, "a");
  IngestService svc(rt);
  std::atomic<bool> ran{false};
  svc.post_task(0, [&, s, a](GpuRuntime& g) {
    LaunchSpec spec = simple_kernel("k", {{a, true}});
    spec.functional = [&ran] { ran.store(true); };
    g.launch(s, spec);
  });
  // No explicit flush: synchronize_device is an observation point and must
  // drain the ambient tenant's shard before it reports the device idle.
  rt.synchronize_device();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(rt.stream_idle(s));
}

TEST(IngestQueueTest, PerItemErrorsFailTokensAndDrainContinues) {
  GpuRuntime rt(DeviceSpec::test_device());
  const StreamId s = rt.create_stream();
  IngestService svc(rt);

  auto bad = svc.submit_task(
      0, [](GpuRuntime&) { throw ApiError("injected failure"); });
  auto good = svc.submit(0, raw_kernel(rt, s, "after-error"), rt.now());
  svc.flush_and_wait(0);

  EXPECT_THROW(bad.get(), ApiError);
  const OpId id = good.get();  // the failed item did not poison the batch
  EXPECT_NE(id, kInvalidOp);
  rt.synchronize_device();
  EXPECT_TRUE(rt.engine().op_done(id));
  EXPECT_GE(svc.stats().errors, 1);
}

TEST(IngestQueueTest, DestructorFlushesOutstandingWork) {
  GpuRuntime rt(DeviceSpec::test_device());
  const StreamId s = rt.create_stream();
  OpId id = kInvalidOp;
  {
    IngestService svc(rt);
    auto tok = svc.submit(0, raw_kernel(rt, s, "k"), rt.now());
    // No flush: the destructor drains, joins, and detaches.
    id = tok.get();
  }
  EXPECT_EQ(rt.ingest(), nullptr);
  rt.synchronize_device();
  EXPECT_TRUE(rt.engine().op_done(id));
}

// ---------------------------------------------------------------------
// Shard topology and the tenant-handle surface.
// ---------------------------------------------------------------------

TEST(IngestQueueTest, ShardAssignmentExplicitAndModuloDefault) {
  GpuRuntime rt(DeviceSpec::test_device());
  IngestService svc(rt, {.shards = 3, .max_batch = 64});
  EXPECT_EQ(svc.num_shards(), 3);
  EXPECT_EQ(svc.shard_of(0), 0);
  EXPECT_EQ(svc.shard_of(4), 1);  // modulo default
  svc.assign_shard(4, 2);
  EXPECT_EQ(svc.shard_of(4), 2);
  EXPECT_THROW(svc.assign_shard(0, 3), ApiError);
  EXPECT_THROW(svc.assign_shard(-1, 0), ApiError);
}

TEST(IngestQueueTest, TenantHandlesRouteThroughTheirShard) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& t0 = mgr.create_tenant({.name = "a", .ingest_shard = 1});
  Tenant& t1 = mgr.create_tenant({.name = "b"});
  EXPECT_THROW(t0.run_async([](GpuRuntime&) {}), ApiError);  // not attached

  IngestService svc(rt, {.shards = 2, .max_batch = 64});
  mgr.attach_ingest(svc);
  EXPECT_EQ(mgr.ingest(), &svc);
  EXPECT_EQ(t0.ingest_shard(), 1);  // spec pin applied retroactively
  EXPECT_EQ(t1.ingest_shard(), 1);  // modulo default: 1 % 2
  Tenant& t2 = mgr.create_tenant({.name = "c", .ingest_shard = 0});
  EXPECT_EQ(t2.ingest_shard(), 0);  // pin applied at creation

  const StreamId s0 = t0.create_stream();
  const ArrayId a = t0.alloc(1000, "a0");
  auto done = t0.run_async([s0, a](GpuRuntime& g) {
    g.launch(s0, simple_kernel("t0k", {{a, true}}));
  });
  t0.flush_ingest_and_wait();
  done.get();
  t0.synchronize();
  EXPECT_EQ(t0.ops_completed(), 1);
  EXPECT_EQ(t1.ops_completed(), 0);
}

TEST(IngestQueueTest, RecordedSubmissionReplaysThroughTheQueue) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& t0 = mgr.create_tenant({.name = "a"});
  const StreamId s = t0.create_stream();
  const ArrayId a = t0.alloc(4000, "a0");

  Submission sub;
  {
    GpuRuntime& g = t0.gpu();
    g.begin_record(sub);
    g.launch(s, simple_kernel("rec", {{a, true}}));
    g.end_record();
  }
  t0.synchronize();
  const long base = t0.ops_completed();

  IngestService svc(rt, {.shards = 2, .max_batch = 64});
  mgr.attach_ingest(svc);
  auto tok = t0.replay_async(sub);
  t0.post_replay(sub);
  tok.get();  // resolved once its drain batch committed
  t0.flush_ingest_and_wait();
  t0.synchronize();
  EXPECT_EQ(t0.ops_completed(), base + 2);
}

// Eight concurrent producers flooding two shards: the contended-path
// smoke (the throughput claim itself lives in the benchmark). Everything
// must drain, token order within a producer must hold, and the run must
// be TSan-clean under the tsan preset.
TEST(IngestQueueTest, ContendedMultiProducerFloodDrainsCompletely) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 64;
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  std::vector<StreamId> streams;
  for (int p = 0; p < kProducers; ++p) {
    Tenant& t = mgr.create_tenant({.name = "t" + std::to_string(p)});
    streams.push_back(t.create_stream());
  }
  IngestService svc(rt, {.shards = 2, .max_batch = 32});
  mgr.attach_ingest(svc);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  std::atomic<long> resolved{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const auto tenant = static_cast<TenantId>(p);
      const StreamId s = streams[static_cast<std::size_t>(p)];
      std::future<OpId> last;
      for (int j = 0; j < kPerProducer; ++j) {
        if (j % 8 == 7) {
          last = svc.submit(
              tenant, raw_kernel(rt, s, "f" + std::to_string(j)),
              static_cast<TimeUs>(j));
        } else {
          svc.post(tenant, raw_kernel(rt, s, "f" + std::to_string(j)),
                   static_cast<TimeUs>(j));
        }
      }
      if (last.valid()) {
        last.get();
        resolved.fetch_add(1);
      }
    });
  }
  for (auto& th : producers) th.join();
  svc.flush_all_and_wait();
  rt.synchronize_device();

  EXPECT_EQ(resolved.load(), kProducers);
  const IngestStats st = svc.stats();
  EXPECT_EQ(st.ops, kProducers * kPerProducer);
  EXPECT_EQ(st.errors, 0);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(mgr.tenant(static_cast<TenantId>(p)).ops_completed(),
              kPerProducer)
        << "tenant " << p;
  }
}

}  // namespace
}  // namespace psched::sim
