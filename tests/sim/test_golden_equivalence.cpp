// Golden-equivalence suite (engine rework guardrail).
//
// The heap-driven engine must produce the same virtual timelines as the
// seed scan-per-step engine: identical op sequence (kind, stream, name,
// completion order) and identical start/completion times on every scenario
// — the five paper benchmark DAGs driven through the full runtime stack
// plus an engine-level contention DAG.
//
// Times are compared to within 1e-6 us absolute / 1e-9 relative: the two
// engines fold fluid-model progress at different boundaries (the seed
// touches every running op at every discrete step, the reworked engine only
// at per-class rate changes), which perturbs the accumulated `done` in the
// last ulps. Everything structural must match exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "golden_scenarios.hpp"
#include "sim/ingest_queue.hpp"
#include "sim/runtime.hpp"

namespace psched::sim::golden {
namespace {

constexpr double kAbsTol = 1e-6;
constexpr double kRelTol = 1e-9;
/// Measured 436 solved ops when the incremental solver landed (seed full
/// re-solve: 4072). Headroom for legitimate model changes only.
constexpr long kChurnSolvedOpsRatchet = 500;

void expect_time_eq(TimeUs got, TimeUs want, const std::string& what) {
  const double tol = std::max(kAbsTol, kRelTol * std::abs(want));
  EXPECT_NEAR(got, want, tol) << what;
}

void compare(const GoldenRun& run, const Fixture& fix,
             const std::string& name) {
  expect_time_eq(run.makespan, fix.makespan, name + ": makespan");
  ASSERT_EQ(run.entries.size(), fix.entries.size())
      << name << ": timeline length diverged";
  for (std::size_t i = 0; i < fix.entries.size(); ++i) {
    const TimelineEntry& got = run.entries[i];
    const TimelineEntry& want = fix.entries[i];
    const std::string what =
        name + ": entry " + std::to_string(i) + " (" + want.name + ")";
    EXPECT_EQ(got.kind, want.kind) << what;
    EXPECT_EQ(got.stream, want.stream) << what;
    EXPECT_EQ(got.name, want.name) << what;
    expect_time_eq(got.start, want.start, what + " start");
    expect_time_eq(got.end, want.end, what + " end");
  }
}

TEST(GoldenEquivalence, ContentionDag) {
  const GoldenRun run = run_contention_scenario();
  compare(run, load_fixture("contention_1k"), "contention_1k");
}

TEST(GoldenEquivalence, TransferChurnDag) {
  const GoldenRun run = run_transfer_churn_scenario();
  compare(run, load_fixture("transfer_churn"), "transfer_churn");
}

class GoldenBenchmark
    : public ::testing::TestWithParam<benchsuite::BenchId> {};

TEST_P(GoldenBenchmark, TimelineMatchesSeedEngine) {
  const std::string name = benchsuite::name(GetParam());
  compare(run_benchmark_scenario(GetParam()), load_fixture(name), name);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, GoldenBenchmark,
    ::testing::ValuesIn(benchsuite::all_benchmarks()),
    [](const auto& info) { return sanitized(benchsuite::name(info.param)); });

// ---------------------------------------------------------------------
// Single-tenant fast path (tenancy guardrail): with one tenant, all of
// the fairness accounting — tenant columns in the solver mirrors, the
// weight table, quota bookkeeping — must compile down to today's
// behaviour. Not "within tolerance": the two runs execute the identical
// arithmetic on one engine build, so every time must match bit for bit.
// ---------------------------------------------------------------------

TEST(GoldenEquivalence, SingleTenantFastPathBitIdentical) {
  const GoldenRun base = run_contention_scenario();

  Engine eng(DeviceSpec::test_device());
  // Configure tenancy aggressively — a non-default weight for the only
  // tenant and a registered but op-less second tenant — none of which
  // may perturb a single-tenant schedule.
  eng.set_tenant_weight(0, 7.0);
  eng.set_tenant_weight(5, 0.25);
  build_contention_dag(eng, 1000, 16);
  GoldenRun run;
  run.makespan = eng.run_all();
  run.entries = eng.timeline().entries();

  EXPECT_EQ(run.makespan, base.makespan);  // exact, not approximate
  ASSERT_EQ(run.entries.size(), base.entries.size());
  for (std::size_t i = 0; i < base.entries.size(); ++i) {
    const TimelineEntry& got = run.entries[i];
    const TimelineEntry& want = base.entries[i];
    ASSERT_EQ(got.kind, want.kind) << "entry " << i;
    ASSERT_EQ(got.stream, want.stream) << "entry " << i;
    ASSERT_EQ(got.name, want.name) << "entry " << i;
    ASSERT_EQ(got.start, want.start) << "entry " << i;  // bit-identical
    ASSERT_EQ(got.end, want.end) << "entry " << i;
  }
}

// ---------------------------------------------------------------------
// Concurrent-ingestion fast path (front-end guardrail): a single producer
// driving the contention DAG through the MPSC submission queue must
// reproduce the direct-drive schedule bit for bit. Drain batching is
// invisible because engine transactions group without reordering, and
// commits at the same host stamps replay per-call issue timing.
// ---------------------------------------------------------------------

TEST(GoldenEquivalence, QueueSingleProducerBitIdentical) {
  const GoldenRun base = run_contention_scenario();

  GpuRuntime rt(DeviceSpec::test_device());
  IngestService svc(rt);  // one shard: the single-producer configuration
  {
    // Hold the api gate across emission: stream/event creation goes to
    // the engine directly, so the drain must not run mid-emission. Queue
    // pushes are lock-free and unaffected; everything drains below.
    const auto gate = rt.api_guard();
    Engine& eng = rt.engine();
    emit_contention_dag(
        eng, 1000, 16, [&svc](Op op) { svc.post(0, std::move(op), 0); },
        [&svc](EventId ev, StreamId s) { svc.post_record(0, ev, s, 0); },
        [&svc](StreamId s, EventId ev) { svc.post_wait(0, s, ev, 0); });
  }
  svc.flush_and_wait(0);
  rt.synchronize_device();

  const auto& entries = rt.timeline().entries();
  EXPECT_EQ(rt.timeline().makespan(), base.makespan);  // exact
  ASSERT_EQ(entries.size(), base.entries.size());
  for (std::size_t i = 0; i < base.entries.size(); ++i) {
    const TimelineEntry& got = entries[i];
    const TimelineEntry& want = base.entries[i];
    ASSERT_EQ(got.kind, want.kind) << "entry " << i;
    ASSERT_EQ(got.stream, want.stream) << "entry " << i;
    ASSERT_EQ(got.name, want.name) << "entry " << i;
    ASSERT_EQ(got.start, want.start) << "entry " << i;  // bit-identical
    ASSERT_EQ(got.end, want.end) << "entry " << i;
  }
}

// ---------------------------------------------------------------------
// Solver-work regression (Fig. 9 contention scenario): the incremental
// per-class re-solve must do strictly less rate-assignment work than the
// seed's full re-solve on every running-set change, and must never regress
// past the ratchet measured when the incremental solver landed.
// ---------------------------------------------------------------------

TEST(SolverRegression, ContentionSolvesDropAndNeverGrow) {
  // Mixed kernel/copy churn: the kernel class changes on nearly every step,
  // so the drop is modest — but it must never be worse than a full solve
  // per running-set change.
  const GoldenRun run = run_contention_scenario();
  const Fixture fix = load_fixture("contention_1k");
  EXPECT_LT(run.solved_ops, fix.seed_solved_ops);
}

TEST(SolverRegression, TransferChurnSolvesCollapse) {
  // Transfer churn under stable long kernels (the Fig. 9 B&S pressure):
  // with per-class re-solves a copy completion re-prices one transfer, not
  // every running kernel. This is where the incremental solver pays.
  const GoldenRun run = run_transfer_churn_scenario();
  const Fixture fix = load_fixture("transfer_churn");
  // At least 4x less solver work than the seed's full re-solve.
  EXPECT_LT(run.solved_ops * 4, fix.seed_solved_ops);
  // Ratchet (measured when the incremental solver landed): never grows.
  EXPECT_LE(run.solved_ops, kChurnSolvedOpsRatchet);
}

// ---------------------------------------------------------------------
// Fixture regeneration (explicitly disabled; see golden_scenarios.hpp).
// ---------------------------------------------------------------------

TEST(GoldenFixtures, DISABLED_Regenerate) {
  for (const auto& [name, run] : run_all_scenarios()) {
    write_fixture(name, run);
    std::printf("wrote %s: %zu entries, makespan %.6f, solves %ld/%ld\n",
                name.c_str(), run.entries.size(), run.makespan, run.solves,
                run.solved_ops);
  }
}

}  // namespace
}  // namespace psched::sim::golden
