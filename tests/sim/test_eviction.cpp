// Oversubscription through the runtime: LRU page-out on the fault path.
//
// The device can hold less than the program's working set; admissions page
// out least-recently-used victim extents instead of throwing, write-backs
// are priced as real D2H ops on the DMA classes, and under-capacity
// workloads remain bit-identical to the pre-paging engine.
#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.hpp"
#include "sim/runtime.hpp"

namespace psched::sim {
namespace {

LaunchSpec kernel_spec(const std::string& name, std::vector<ArrayUse> arrays,
                       double flops_sp = 1e5) {
  LaunchSpec s;
  s.name = name;
  s.config = LaunchConfig::linear(4, 64);
  s.profile.flops_sp = flops_sp;
  s.arrays = std::move(arrays);
  return s;
}

/// A test device whose memory holds `cap` bytes.
DeviceSpec small_device(std::size_t cap) {
  DeviceSpec spec = DeviceSpec::test_device();
  spec.memory_bytes = cap;
  return spec;
}

// --- the acceptance scenario: 2x-capacity working set completes ---------

TEST(Eviction, OversubscribedWorkingSetCompletesWithNonzeroEvictions) {
  // Four 4000-byte arrays against an 8000-byte device: a 2x working set.
  GpuRuntime rt(small_device(8000));
  std::vector<ArrayId> arrays;
  for (int i = 0; i < 4; ++i) {
    arrays.push_back(rt.alloc(4000, "a" + std::to_string(i)));
    rt.host_write(arrays.back());
  }
  for (int round = 0; round < 3; ++round) {
    for (const ArrayId a : arrays) {
      rt.launch(kDefaultStream, kernel_spec("k", {{a, true}}));
      rt.synchronize_device();
    }
  }
  EXPECT_GT(rt.bytes_evicted(), 0u);
  EXPECT_GT(rt.evict_ops(), 0);  // kernel-written victims need write-backs
  EXPECT_LE(rt.device_bytes_used(0), 8000u);
  EXPECT_EQ(rt.device_bytes_peak(0), 8000u);
  // Every round after the first re-faults what the previous round evicted.
  EXPECT_GT(rt.fault_ops(), 4);
}

// --- LRU victim ordering under a 3-array thrash pattern -----------------

TEST(Eviction, LruPicksTheLeastRecentlyTouchedVictim) {
  // Device fits two of the three arrays; every launch of the third evicts
  // exactly the least-recently-used one.
  GpuRuntime rt(small_device(8000));
  const ArrayId a = rt.alloc(4000, "a");
  const ArrayId b = rt.alloc(4000, "b");
  const ArrayId c = rt.alloc(4000, "c");
  auto resident = [&](ArrayId id) {
    return rt.memory().info(id).resident_bytes_on(0) > 0;
  };
  auto use = [&](ArrayId id) {
    rt.launch(kDefaultStream, kernel_spec("k", {{id, false}}));
    rt.synchronize_device();
  };
  for (const ArrayId id : {a, b, c}) rt.host_write(id);

  use(a);
  use(b);          // resident: {a, b}, LRU = a
  use(c);          // evicts a
  EXPECT_FALSE(resident(a));
  EXPECT_TRUE(resident(b) && resident(c));
  use(a);          // LRU is now b
  EXPECT_FALSE(resident(b));
  EXPECT_TRUE(resident(a) && resident(c));
  use(b);          // LRU is now c
  EXPECT_FALSE(resident(c));
  EXPECT_TRUE(resident(a) && resident(b));
  // Re-touching an already-resident array refreshes its recency.
  use(a);          // order now (b, a); next eviction takes b, not a
  use(c);
  EXPECT_FALSE(resident(b));
  EXPECT_TRUE(resident(a) && resident(c));
}

// --- pinned-page exemption ----------------------------------------------

TEST(Eviction, PinnedArraysAreNeverVictims) {
  GpuRuntime rt(small_device(8000));
  const ArrayId pinned = rt.alloc(4000, "pinned");
  const ArrayId x = rt.alloc(4000, "x");
  const ArrayId y = rt.alloc(4000, "y");
  for (const ArrayId id : {pinned, x, y}) rt.host_write(id);
  auto use = [&](ArrayId id) {
    rt.launch(kDefaultStream, kernel_spec("k", {{id, false}}));
    rt.synchronize_device();
  };
  use(pinned);
  rt.advise_pin(pinned, 0);
  // x and y thrash the remaining half; pinned stays put although it is
  // always the least recently used.
  use(x);
  use(y);
  use(x);
  use(y);
  EXPECT_EQ(rt.memory().info(pinned).resident_bytes_on(0), 4000u);
  // Unpinning re-exposes it to the LRU scan.
  rt.advise_unpin(pinned, 0);
  use(x);
  EXPECT_EQ(rt.memory().info(pinned).resident_bytes_on(0), 0u);
}

// --- stale copies are evicted before fresh ones -------------------------

TEST(Eviction, StaleCopiesGoBeforeFreshOnesAndDropForFree) {
  GpuRuntime rt(small_device(8000));
  const ArrayId stale = rt.alloc(4000, "stale");
  const ArrayId fresh = rt.alloc(4000, "fresh");
  const ArrayId incoming = rt.alloc(4000, "incoming");
  for (const ArrayId id : {stale, fresh, incoming}) rt.host_write(id);
  auto use = [&](ArrayId id, bool write) {
    rt.launch(kDefaultStream, kernel_spec("k", {{id, write}}));
    rt.synchronize_device();
  };
  // `stale` lands on device, then the host invalidates its device copy
  // (pages stay charged — unified-memory semantics).
  use(stale, false);
  rt.host_write(stale);
  // `fresh` is kernel-written: the device holds its only current copy and
  // it is the more recently used of the two.
  use(fresh, true);
  ASSERT_EQ(rt.device_bytes_used(0), 8000u);

  const double d2h_before = rt.bytes_d2h();
  use(incoming, false);
  // The stale copy was dropped (free, no D2H) even though `fresh` — whose
  // eviction would cost a write-back — was not more recently used... and
  // the fresh copy survived.
  EXPECT_EQ(rt.memory().info(stale).resident_bytes_on(0), 0u);
  EXPECT_EQ(rt.memory().info(fresh).resident_bytes_on(0), 4000u);
  EXPECT_EQ(rt.bytes_d2h(), d2h_before);
  EXPECT_EQ(rt.evict_ops(), 0);
}

// --- eviction traffic is priced on the DMA classes ----------------------

TEST(Eviction, WritebacksRideTheD2hDmaClassAndGateTheFaultingOp) {
  GpuRuntime rt(small_device(8000));
  const ArrayId victim = rt.alloc(8000, "victim");
  const ArrayId incoming = rt.alloc(4000, "incoming");
  rt.host_write(victim);
  rt.host_write(incoming);
  // The victim is kernel-written: the device owns its only current copy.
  rt.launch(kDefaultStream, kernel_spec("k1", {{victim, true}}));
  rt.synchronize_device();
  const long d2h_solves_before =
      rt.engine().class_solve_count(0, OpKind::CopyD2H);

  rt.launch(kDefaultStream, kernel_spec("k2", {{incoming, false}}));
  rt.synchronize_device();

  // The page-out is a real D2H op: it ran on the (device 0, CopyD2H)
  // class, it shows in the timeline, and the faulting kernel's migration
  // started only after the write-back drained.
  EXPECT_GT(rt.engine().class_solve_count(0, OpKind::CopyD2H),
            d2h_solves_before);
  EXPECT_EQ(rt.evict_ops(), 1);
  // The victim spans a single page (default 2 MiB granule), so the whole
  // 8000-byte run pages out even though the shortfall was 4000.
  EXPECT_EQ(rt.device_bytes_evicted(0), 8000u);
  const TimelineEntry* evict = nullptr;
  const TimelineEntry* fault = nullptr;
  for (const TimelineEntry& e : rt.timeline().entries()) {
    if (e.kind == OpKind::CopyD2H && e.name == "evict:victim") evict = &e;
    if (e.kind == OpKind::Fault && e.name == "fault:incoming") fault = &e;
  }
  ASSERT_NE(evict, nullptr);
  ASSERT_NE(fault, nullptr);
  EXPECT_EQ(evict->bytes, 8000.0);
  EXPECT_GE(fault->start, evict->end);
  // The evicted half is fetchable again: nothing was lost.
  rt.host_read(victim);
}

// --- async bursts stall like a page fault instead of throwing -----------

TEST(Eviction, AsyncLaunchBurstStallsInsteadOfThrowing) {
  // Two back-to-back async launches whose combined working sets exceed the
  // device: the second admission finds the first launch's array pinned by
  // its in-flight ops. A real UM fault stalls until frames free — the
  // runtime models the stall (drain + retry) rather than raising
  // OutOfMemoryError, which is reserved for a single op that can never fit.
  GpuRuntime rt(small_device(8000));
  const ArrayId x = rt.alloc(8000, "x");
  const ArrayId y = rt.alloc(8000, "y");
  rt.host_write(x);
  rt.host_write(y);
  const StreamId s1 = rt.create_stream();
  const StreamId s2 = rt.create_stream();
  rt.launch(kDefaultStream, kernel_spec("kx", {{x, true}}));
  rt.synchronize_device();
  rt.launch(s1, kernel_spec("ky", {{y, false}}));  // evicts x (write-back)
  // No synchronize: y is pinned by ky's in-flight ops when x re-faults.
  EXPECT_NO_THROW(rt.launch(s2, kernel_spec("kx2", {{x, false}})));
  rt.synchronize_device();
  EXPECT_GE(rt.bytes_evicted(), 16000u);  // x out, then y out
  rt.host_read(x);  // nothing was lost
}

// --- re-faults order behind in-flight write-backs -----------------------

TEST(Eviction, RefaultWaitsForTheInFlightWriteback) {
  // `a` is paged out with a write-back and immediately re-faulted from
  // another stream while the D2H is still in flight: the host copy only
  // materializes when the write-back lands, so the fault must start after
  // it — not race it.
  GpuRuntime rt(small_device(8000));
  const ArrayId a = rt.alloc(4000, "a");
  const ArrayId b = rt.alloc(4000, "b");
  const ArrayId c = rt.alloc(4000, "c");
  for (const ArrayId id : {a, b, c}) rt.host_write(id);
  const StreamId s1 = rt.create_stream();
  const StreamId s2 = rt.create_stream();
  rt.launch(kDefaultStream, kernel_spec("ka", {{a, true}}));  // only copy
  rt.synchronize_device();
  rt.launch(kDefaultStream, kernel_spec("kb", {{b, false}}));
  rt.synchronize_device();  // LRU order: a, then b
  // Evicts `a` (LRU write-back); the D2H is still running when the next
  // launch re-faults `a`, dropping `b` for free to make room.
  rt.launch(s1, kernel_spec("kc", {{c, false}}));
  rt.launch(s2, kernel_spec("ka2", {{a, false}}));
  rt.synchronize_device();
  const TimelineEntry* evict = nullptr;
  const TimelineEntry* fault = nullptr;
  for (const TimelineEntry& e : rt.timeline().entries()) {
    if (e.kind == OpKind::CopyD2H && e.name == "evict:a") evict = &e;
    if (e.kind == OpKind::Fault && e.name == "fault:a") fault = &e;
  }
  ASSERT_NE(evict, nullptr);
  ASSERT_NE(fault, nullptr);
  EXPECT_GE(fault->start, evict->end);
}

// --- partial-fresh arrays fetch only their stale runs -------------------

TEST(Eviction, PartialEvictionRefetchesOnlyTheEvictedRuns) {
  // 1000-byte pages: the 4000-byte array spans four. Admitting a one-page
  // array evicts exactly one page; relaunching on the victim faults back
  // only that page.
  GpuRuntime rt(Machine::single(small_device(4000)), /*page_bytes=*/1000);
  const ArrayId big = rt.alloc(4000, "big");
  const ArrayId one = rt.alloc(1000, "one");
  rt.host_write(big);
  rt.host_write(one);
  rt.launch(kDefaultStream, kernel_spec("k1", {{big, false}}));
  rt.synchronize_device();
  rt.launch(kDefaultStream, kernel_spec("k2", {{one, false}}));
  rt.synchronize_device();
  EXPECT_EQ(rt.memory().info(big).resident_bytes_on(0), 3000u);

  const double faulted_before = rt.bytes_faulted();
  rt.launch(kDefaultStream, kernel_spec("k3", {{big, false}}));
  rt.synchronize_device();
  // Only the evicted 1000-byte run moved, not the whole array.
  EXPECT_EQ(rt.bytes_faulted() - faulted_before, 1000.0);
  EXPECT_EQ(rt.memory().info(big).resident_bytes_on(0), 4000u);
}

// --- advise hooks --------------------------------------------------------

TEST(Eviction, AdviseEvictReleasesPagesAndPricesWritebacks) {
  GpuRuntime rt(small_device(8000));
  const ArrayId a = rt.alloc(4000, "a");
  rt.host_write(a);
  rt.launch(kDefaultStream, kernel_spec("k", {{a, true}}));
  rt.synchronize_device();
  ASSERT_EQ(rt.device_bytes_used(0), 4000u);
  const std::size_t freed = rt.advise_evict(a, 0);
  EXPECT_EQ(freed, 4000u);
  EXPECT_EQ(rt.device_bytes_used(0), 0u);
  EXPECT_EQ(rt.evict_ops(), 1);  // kernel-written: needs a write-back
  rt.synchronize_device();
  rt.host_read(a);  // data survived on the host
  // Evicting an already-evicted array is a no-op.
  EXPECT_EQ(rt.advise_evict(a, 0), 0u);
}

TEST(Eviction, FreeDuringInFlightWritebackDrainsThePageOut) {
  // The write-back is runtime-initiated traffic the caller never issued:
  // freeing its array stalls until the page-out lands instead of raising
  // the missing-synchronization error reserved for user ops.
  GpuRuntime rt(small_device(8000));
  const ArrayId a = rt.alloc(4000, "a");
  rt.host_write(a);
  rt.launch(kDefaultStream, kernel_spec("k", {{a, true}}));
  rt.synchronize_device();
  ASSERT_EQ(rt.advise_evict(a, 0), 4000u);  // write-back now in flight
  EXPECT_NO_THROW(rt.free_array(a));
  EXPECT_EQ(rt.memory().num_live_arrays(), 0u);
  rt.synchronize_device();  // nothing left dangling
}

// --- golden-equivalence guard -------------------------------------------

TEST(Eviction, UnderCapacityWorkloadsAreBitIdenticalToUnpagedRuns) {
  // The same program against an exactly-fitting device and against one
  // with effectively unlimited memory: identical timelines, zero
  // evictions. (The pre-paging engine is additionally pinned by the
  // golden fixture suite, which runs the full runtime stack.)
  auto run = [](std::size_t cap) {
    GpuRuntime rt(small_device(cap));
    const ArrayId x = rt.alloc(4000, "x");
    const ArrayId y = rt.alloc(4000, "y");
    rt.host_write(x);
    const StreamId s1 = rt.create_stream();
    rt.launch(kDefaultStream, kernel_spec("kx", {{x, false}, {y, true}}));
    rt.launch(s1, kernel_spec("ky", {{y, false}}));
    rt.mem_prefetch_async(x, s1);
    rt.launch(s1, kernel_spec("kz", {{x, true}}));
    rt.synchronize_device();
    rt.host_read(y);
    struct Result {
      std::vector<TimelineEntry> entries;
      std::size_t evicted;
      TimeUs now;
    };
    return Result{rt.timeline().entries(), rt.bytes_evicted(), rt.now()};
  };
  const auto exact = run(8000);
  const auto huge = run(1u << 30);
  EXPECT_EQ(exact.evicted, 0u);
  EXPECT_EQ(huge.evicted, 0u);
  EXPECT_EQ(exact.now, huge.now);
  ASSERT_EQ(exact.entries.size(), huge.entries.size());
  for (std::size_t i = 0; i < exact.entries.size(); ++i) {
    EXPECT_EQ(exact.entries[i].name, huge.entries[i].name) << i;
    EXPECT_EQ(exact.entries[i].kind, huge.entries[i].kind) << i;
    EXPECT_EQ(exact.entries[i].start, huge.entries[i].start) << i;
    EXPECT_EQ(exact.entries[i].end, huge.entries[i].end) << i;
  }
}

}  // namespace
}  // namespace psched::sim
