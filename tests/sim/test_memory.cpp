#include <gtest/gtest.h>

#include "sim/device_spec.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace psched::sim {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  DeviceSpec spec_ = DeviceSpec::test_device();  // 1 GiB
  MemoryManager mem_{spec_};
};

TEST_F(MemoryTest, AllocTracksUsage) {
  const ArrayId a = mem_.alloc(1000, "a");
  const ArrayId b = mem_.alloc(2000, "b");
  EXPECT_NE(a, b);
  EXPECT_EQ(mem_.used_bytes(), 3000u);
  EXPECT_EQ(mem_.num_live_arrays(), 2u);
}

TEST_F(MemoryTest, FreshArrayIsUntouched) {
  // First-touch semantics: a fresh allocation has no host data yet, so it
  // needs no migration until the host actually writes it.
  const ArrayId a = mem_.alloc(1000, "a");
  const ArrayInfo& info = mem_.info(a);
  EXPECT_FALSE(info.on_device);
  EXPECT_FALSE(info.host_touched);
  EXPECT_FALSE(info.needs_h2d());
  EXPECT_EQ(info.attached_stream, kInvalidStream);
}

TEST_F(MemoryTest, FreeReleasesBytes) {
  const ArrayId a = mem_.alloc(1000, "a");
  mem_.free_array(a);
  EXPECT_EQ(mem_.used_bytes(), 0u);
  EXPECT_EQ(mem_.num_live_arrays(), 0u);
}

TEST_F(MemoryTest, AllocOversubscribesDeviceMemoryUpToTheHostHeap) {
  // Device memory is oversubscribable: alloc is bounded by the managed
  // (host) heap, not by device capacity — admission pages data in later.
  EXPECT_EQ(mem_.host_capacity(),
            MemoryManager::kHostHeapMultiple * spec_.memory_bytes);
  EXPECT_NO_THROW(mem_.alloc(2 * spec_.memory_bytes, "oversubscribed"));
  EXPECT_THROW(mem_.alloc(mem_.host_capacity(), "overflow"),
               OutOfMemoryError);
}

TEST_F(MemoryTest, HostHeapOutOfMemoryCarriesTheAccounting) {
  mem_.alloc(100, "a");
  try {
    mem_.alloc(mem_.host_capacity(), "overflow");
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.device, kInvalidDevice);  // host-side managed heap
    EXPECT_EQ(e.requested, mem_.host_capacity());
    EXPECT_EQ(e.in_use, 100u);
    EXPECT_EQ(e.capacity, mem_.host_capacity());
    EXPECT_EQ(e.evictable, 0u);
  }
}

TEST_F(MemoryTest, FreeingMakesRoom) {
  const ArrayId a = mem_.alloc(mem_.host_capacity(), "all");
  EXPECT_THROW(mem_.alloc(1, "no"), OutOfMemoryError);
  mem_.free_array(a);
  EXPECT_NO_THROW(mem_.alloc(mem_.host_capacity(), "again"));
}

TEST_F(MemoryTest, ZeroByteAllocThrows) {
  EXPECT_THROW(mem_.alloc(0, "zero"), ApiError);
}

TEST_F(MemoryTest, DoubleFreeThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.free_array(a);
  EXPECT_THROW(mem_.free_array(a), ApiError);
}

TEST_F(MemoryTest, UseAfterFreeThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.free_array(a);
  EXPECT_THROW((void)mem_.info(a), ApiError);
  EXPECT_FALSE(mem_.valid(a));
}

TEST_F(MemoryTest, UnknownArrayThrows) {
  EXPECT_THROW((void)mem_.info(424242), ApiError);
  EXPECT_FALSE(mem_.valid(424242));
}

TEST_F(MemoryTest, FreeWithPendingOpsThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.info(a).pending_reads.insert(7);
  EXPECT_THROW(mem_.free_array(a), ApiError);
  mem_.info(a).erase_pending(7);
  mem_.info(a).pending_writes.insert(9);
  EXPECT_THROW(mem_.free_array(a), ApiError);
  mem_.info(a).erase_pending(9);
  EXPECT_NO_THROW(mem_.free_array(a));
}

// --- per-device capacity accounting ---

TEST_F(MemoryTest, OutOfMemoryIsAnApiError) {
  // The ROADMAP contract: exhausting the managed heap raises an ApiError
  // (OutOfMemoryError specializes it).
  mem_.alloc(mem_.host_capacity(), "all");
  EXPECT_THROW(mem_.alloc(1, "over"), ApiError);
}

class PerDeviceMemoryTest : public ::testing::Test {
 protected:
  static Machine small_machine() {
    DeviceSpec a = DeviceSpec::test_device();
    a.memory_bytes = 10000;
    DeviceSpec b = DeviceSpec::test_device();
    b.memory_bytes = 4000;
    Machine m;
    m.add_device(a);
    m.add_device(b);
    return m;
  }
  MemoryManager mem_{small_machine()};
};

TEST_F(PerDeviceMemoryTest, CapacitiesComeFromTheRoster) {
  EXPECT_EQ(mem_.num_devices(), 2);
  EXPECT_EQ(mem_.device_capacity(0), 10000u);
  EXPECT_EQ(mem_.device_capacity(1), 4000u);
  EXPECT_EQ(mem_.capacity(), 14000u);  // alloc bound: combined roster
  EXPECT_THROW((void)mem_.device_capacity(2), ApiError);
}

TEST_F(PerDeviceMemoryTest, ChargeIsIdempotentAndTracksPeak) {
  const ArrayId a = mem_.alloc(3000, "a");
  ArrayInfo& info = mem_.info(a);
  mem_.charge_residency(info, 0);
  mem_.charge_residency(info, 0);  // idempotent
  EXPECT_EQ(mem_.device_used_bytes(0), 3000u);
  EXPECT_EQ(mem_.device_used_bytes(1), 0u);
  mem_.charge_residency(info, 1);
  EXPECT_EQ(mem_.device_used_bytes(1), 3000u);
  EXPECT_EQ(info.resident_mask, 0b11u);

  mem_.free_array(a);
  EXPECT_EQ(mem_.device_used_bytes(0), 0u);
  EXPECT_EQ(mem_.device_used_bytes(1), 0u);
  // Peaks survive the free.
  EXPECT_EQ(mem_.device_peak_bytes(0), 3000u);
  EXPECT_EQ(mem_.device_peak_bytes(1), 3000u);
}

TEST_F(PerDeviceMemoryTest, OverCapacityAdmissionEvictsTheLruVictim) {
  const ArrayId a = mem_.alloc(3000, "a");
  const ArrayId b = mem_.alloc(3000, "b");
  ArrayInfo& ia = mem_.info(a);
  ArrayInfo& ib = mem_.info(b);
  EXPECT_TRUE(mem_.charge_residency(ia, 1).empty());  // 3000 of 4000
  // Admitting b (3000 more) overflows device 1: a's pages are paged out.
  const EvictionPlan plan = mem_.charge_residency(ib, 1);
  ASSERT_EQ(plan.page_outs.size(), 1u);
  EXPECT_EQ(plan.page_outs.front().array, a);
  EXPECT_EQ(plan.bytes_freed, 3000u);
  EXPECT_FALSE(plan.page_outs.front().writeback);  // a was never written
  EXPECT_EQ(ia.resident_mask, 0u);
  EXPECT_EQ(ib.resident_mask, 0b10u);
  EXPECT_EQ(mem_.device_used_bytes(1), 3000u);
  EXPECT_EQ(mem_.device_evicted_bytes(1), 3000u);
}

TEST_F(PerDeviceMemoryTest, SingleWorkingSetBeyondCapacityStillThrows) {
  // OutOfMemoryError remains only when one operation's working set cannot
  // fit the device even after paging everything else out.
  const ArrayId filler = mem_.alloc(3000, "filler");
  mem_.charge_residency(mem_.info(filler), 1);
  const ArrayId big = mem_.alloc(5000, "big");
  try {
    mem_.charge_residency(mem_.info(big), 1);  // 5000 > 4000 capacity
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.device, 1);
    EXPECT_EQ(e.requested, 5000u);
    EXPECT_EQ(e.in_use, 3000u);
    EXPECT_EQ(e.capacity, 4000u);
    EXPECT_EQ(e.evictable, 3000u);
  }
  // Rejected before any state change: the filler stayed resident.
  EXPECT_EQ(mem_.device_used_bytes(1), 3000u);
  EXPECT_EQ(mem_.info(filler).resident_mask, 0b10u);
  // The same array fits on the larger device.
  EXPECT_NO_THROW(mem_.charge_residency(mem_.info(big), 0));
}

TEST_F(PerDeviceMemoryTest, PendingAndPinnedPagesAreNotEvictable) {
  const ArrayId a = mem_.alloc(2000, "a");
  const ArrayId b = mem_.alloc(2000, "b");
  const ArrayId c = mem_.alloc(2000, "c");
  mem_.charge_residency(mem_.info(a), 1);
  mem_.charge_residency(mem_.info(b), 1);  // device 1 full (4000)
  mem_.info(a).pending_reads.insert(7);    // a: in-flight device op
  mem_.set_pinned(mem_.info(b), 1, true);  // b: pinned
  try {
    mem_.charge_residency(mem_.info(c), 1);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.evictable, 0u);  // neither a nor b may be paged out
  }
  mem_.info(a).erase_pending(7);
  mem_.set_pinned(mem_.info(b), 1, false);
  EXPECT_EQ(mem_.evictable_bytes(1), 4000u);
  EXPECT_NO_THROW(mem_.charge_residency(mem_.info(c), 1));
}

TEST_F(PerDeviceMemoryTest, PartialEvictionSplitsExtents) {
  // Small pages so one array spans many: the plan takes only the pages it
  // needs from the LRU victim, leaving a partial-resident array behind.
  MemoryManager mem(small_machine(), /*page_bytes=*/1000);
  const ArrayId a = mem.alloc(4000, "a");  // 4 pages, fills device 1
  const ArrayId b = mem.alloc(1000, "b");  // needs 1 page
  mem.charge_residency(mem.info(a), 1);
  const EvictionPlan plan = mem.charge_residency(mem.info(b), 1);
  ASSERT_EQ(plan.page_outs.size(), 1u);
  EXPECT_EQ(plan.page_outs.front().array, a);
  EXPECT_EQ(plan.page_outs.front().count, 1u);  // one page, not all four
  EXPECT_EQ(plan.bytes_freed, 1000u);
  EXPECT_EQ(mem.info(a).resident_bytes_on(1), 3000u);
  EXPECT_EQ(mem.info(a).extents.size(), 2u);  // split: evicted + resident
  EXPECT_EQ(mem.device_used_bytes(1), 4000u);  // 3000 of a + 1000 of b
}

TEST_F(PerDeviceMemoryTest, WritebackHandsTheOnlyCopyToTheHost) {
  const ArrayId a = mem_.alloc(3000, "a");
  const ArrayId b = mem_.alloc(3000, "b");
  ArrayInfo& ia = mem_.info(a);
  mem_.charge_residency(ia, 1);
  ia.note_kernel_write(1);  // device 1 holds the only current copy
  EXPECT_TRUE(ia.device_dirty);
  const EvictionPlan plan = mem_.charge_residency(mem_.info(b), 1);
  ASSERT_EQ(plan.page_outs.size(), 1u);
  EXPECT_TRUE(plan.page_outs.front().writeback);
  EXPECT_EQ(plan.writeback_bytes, 3000u);
  EXPECT_EQ(mem_.device_writeback_bytes(1), 3000u);
  // The host now owns the newest version; nothing was lost.
  EXPECT_FALSE(ia.device_dirty);
  EXPECT_TRUE(ia.host_touched);
  EXPECT_TRUE(ia.needs_transfer_to(1));  // and it can be fetched back
}

TEST_F(MemoryTest, ResidencyFlagsRoundTrip) {
  const ArrayId a = mem_.alloc(100, "a");
  ArrayInfo& info = mem_.info(a);
  info.host_touched = true;
  info.on_device = true;
  info.host_dirty = false;
  EXPECT_FALSE(info.needs_h2d());
  info.host_dirty = true;  // host wrote: device copy stale again
  EXPECT_TRUE(info.needs_h2d());
}

}  // namespace
}  // namespace psched::sim
