#include <gtest/gtest.h>

#include "sim/device_spec.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace psched::sim {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  DeviceSpec spec_ = DeviceSpec::test_device();  // 1 GiB
  MemoryManager mem_{spec_};
};

TEST_F(MemoryTest, AllocTracksUsage) {
  const ArrayId a = mem_.alloc(1000, "a");
  const ArrayId b = mem_.alloc(2000, "b");
  EXPECT_NE(a, b);
  EXPECT_EQ(mem_.used_bytes(), 3000u);
  EXPECT_EQ(mem_.num_live_arrays(), 2u);
}

TEST_F(MemoryTest, FreshArrayIsUntouched) {
  // First-touch semantics: a fresh allocation has no host data yet, so it
  // needs no migration until the host actually writes it.
  const ArrayId a = mem_.alloc(1000, "a");
  const ArrayInfo& info = mem_.info(a);
  EXPECT_FALSE(info.on_device);
  EXPECT_FALSE(info.host_touched);
  EXPECT_FALSE(info.needs_h2d());
  EXPECT_EQ(info.attached_stream, kInvalidStream);
}

TEST_F(MemoryTest, FreeReleasesBytes) {
  const ArrayId a = mem_.alloc(1000, "a");
  mem_.free_array(a);
  EXPECT_EQ(mem_.used_bytes(), 0u);
  EXPECT_EQ(mem_.num_live_arrays(), 0u);
}

TEST_F(MemoryTest, OutOfMemoryThrows) {
  mem_.alloc(spec_.memory_bytes - 100, "big");
  EXPECT_THROW(mem_.alloc(200, "overflow"), OutOfMemoryError);
  // A fitting allocation still succeeds.
  EXPECT_NO_THROW(mem_.alloc(50, "small"));
}

TEST_F(MemoryTest, FreeingMakesRoom) {
  const ArrayId a = mem_.alloc(spec_.memory_bytes, "all");
  EXPECT_THROW(mem_.alloc(1, "no"), OutOfMemoryError);
  mem_.free_array(a);
  EXPECT_NO_THROW(mem_.alloc(spec_.memory_bytes, "again"));
}

TEST_F(MemoryTest, ZeroByteAllocThrows) {
  EXPECT_THROW(mem_.alloc(0, "zero"), ApiError);
}

TEST_F(MemoryTest, DoubleFreeThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.free_array(a);
  EXPECT_THROW(mem_.free_array(a), ApiError);
}

TEST_F(MemoryTest, UseAfterFreeThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.free_array(a);
  EXPECT_THROW((void)mem_.info(a), ApiError);
  EXPECT_FALSE(mem_.valid(a));
}

TEST_F(MemoryTest, UnknownArrayThrows) {
  EXPECT_THROW((void)mem_.info(424242), ApiError);
  EXPECT_FALSE(mem_.valid(424242));
}

TEST_F(MemoryTest, FreeWithPendingOpsThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.info(a).pending_reads.insert(7);
  EXPECT_THROW(mem_.free_array(a), ApiError);
  mem_.info(a).erase_pending(7);
  mem_.info(a).pending_writes.insert(9);
  EXPECT_THROW(mem_.free_array(a), ApiError);
  mem_.info(a).erase_pending(9);
  EXPECT_NO_THROW(mem_.free_array(a));
}

// --- per-device capacity accounting ---

TEST_F(MemoryTest, OutOfMemoryIsAnApiError) {
  // The ROADMAP contract: allocating beyond DeviceSpec memory raises an
  // ApiError (OutOfMemoryError specializes it).
  mem_.alloc(spec_.memory_bytes, "all");
  EXPECT_THROW(mem_.alloc(1, "over"), ApiError);
}

class PerDeviceMemoryTest : public ::testing::Test {
 protected:
  static Machine small_machine() {
    DeviceSpec a = DeviceSpec::test_device();
    a.memory_bytes = 10000;
    DeviceSpec b = DeviceSpec::test_device();
    b.memory_bytes = 4000;
    Machine m;
    m.add_device(a);
    m.add_device(b);
    return m;
  }
  MemoryManager mem_{small_machine()};
};

TEST_F(PerDeviceMemoryTest, CapacitiesComeFromTheRoster) {
  EXPECT_EQ(mem_.num_devices(), 2);
  EXPECT_EQ(mem_.device_capacity(0), 10000u);
  EXPECT_EQ(mem_.device_capacity(1), 4000u);
  EXPECT_EQ(mem_.capacity(), 14000u);  // alloc bound: combined roster
  EXPECT_THROW((void)mem_.device_capacity(2), ApiError);
}

TEST_F(PerDeviceMemoryTest, ChargeIsIdempotentAndTracksPeak) {
  const ArrayId a = mem_.alloc(3000, "a");
  ArrayInfo& info = mem_.info(a);
  mem_.charge_residency(info, 0);
  mem_.charge_residency(info, 0);  // idempotent
  EXPECT_EQ(mem_.device_used_bytes(0), 3000u);
  EXPECT_EQ(mem_.device_used_bytes(1), 0u);
  mem_.charge_residency(info, 1);
  EXPECT_EQ(mem_.device_used_bytes(1), 3000u);
  EXPECT_EQ(info.resident_mask, 0b11u);

  mem_.free_array(a);
  EXPECT_EQ(mem_.device_used_bytes(0), 0u);
  EXPECT_EQ(mem_.device_used_bytes(1), 0u);
  // Peaks survive the free.
  EXPECT_EQ(mem_.device_peak_bytes(0), 3000u);
  EXPECT_EQ(mem_.device_peak_bytes(1), 3000u);
}

TEST_F(PerDeviceMemoryTest, OverCapacityMigrationRejectedCleanly) {
  const ArrayId a = mem_.alloc(3000, "a");
  const ArrayId b = mem_.alloc(3000, "b");
  ArrayInfo& ia = mem_.info(a);
  ArrayInfo& ib = mem_.info(b);
  mem_.charge_residency(ia, 1);  // 3000 of 4000 on device 1
  EXPECT_THROW(mem_.charge_residency(ib, 1), OutOfMemoryError);
  // Rejected cleanly: nothing charged, mask untouched.
  EXPECT_EQ(ib.resident_mask, 0u);
  EXPECT_EQ(mem_.device_used_bytes(1), 3000u);
  // The same array still fits on the larger device.
  EXPECT_NO_THROW(mem_.charge_residency(ib, 0));
}

TEST_F(MemoryTest, ResidencyFlagsRoundTrip) {
  const ArrayId a = mem_.alloc(100, "a");
  ArrayInfo& info = mem_.info(a);
  info.host_touched = true;
  info.on_device = true;
  info.host_dirty = false;
  EXPECT_FALSE(info.needs_h2d());
  info.host_dirty = true;  // host wrote: device copy stale again
  EXPECT_TRUE(info.needs_h2d());
}

}  // namespace
}  // namespace psched::sim
