#include <gtest/gtest.h>

#include "sim/device_spec.hpp"
#include "sim/memory.hpp"

namespace psched::sim {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  DeviceSpec spec_ = DeviceSpec::test_device();  // 1 GiB
  MemoryManager mem_{spec_};
};

TEST_F(MemoryTest, AllocTracksUsage) {
  const ArrayId a = mem_.alloc(1000, "a");
  const ArrayId b = mem_.alloc(2000, "b");
  EXPECT_NE(a, b);
  EXPECT_EQ(mem_.used_bytes(), 3000u);
  EXPECT_EQ(mem_.num_live_arrays(), 2u);
}

TEST_F(MemoryTest, FreshArrayIsUntouched) {
  // First-touch semantics: a fresh allocation has no host data yet, so it
  // needs no migration until the host actually writes it.
  const ArrayId a = mem_.alloc(1000, "a");
  const ArrayInfo& info = mem_.info(a);
  EXPECT_FALSE(info.on_device);
  EXPECT_FALSE(info.host_touched);
  EXPECT_FALSE(info.needs_h2d());
  EXPECT_EQ(info.attached_stream, kInvalidStream);
}

TEST_F(MemoryTest, FreeReleasesBytes) {
  const ArrayId a = mem_.alloc(1000, "a");
  mem_.free_array(a);
  EXPECT_EQ(mem_.used_bytes(), 0u);
  EXPECT_EQ(mem_.num_live_arrays(), 0u);
}

TEST_F(MemoryTest, OutOfMemoryThrows) {
  mem_.alloc(spec_.memory_bytes - 100, "big");
  EXPECT_THROW(mem_.alloc(200, "overflow"), OutOfMemoryError);
  // A fitting allocation still succeeds.
  EXPECT_NO_THROW(mem_.alloc(50, "small"));
}

TEST_F(MemoryTest, FreeingMakesRoom) {
  const ArrayId a = mem_.alloc(spec_.memory_bytes, "all");
  EXPECT_THROW(mem_.alloc(1, "no"), OutOfMemoryError);
  mem_.free_array(a);
  EXPECT_NO_THROW(mem_.alloc(spec_.memory_bytes, "again"));
}

TEST_F(MemoryTest, ZeroByteAllocThrows) {
  EXPECT_THROW(mem_.alloc(0, "zero"), ApiError);
}

TEST_F(MemoryTest, DoubleFreeThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.free_array(a);
  EXPECT_THROW(mem_.free_array(a), ApiError);
}

TEST_F(MemoryTest, UseAfterFreeThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.free_array(a);
  EXPECT_THROW((void)mem_.info(a), ApiError);
  EXPECT_FALSE(mem_.valid(a));
}

TEST_F(MemoryTest, UnknownArrayThrows) {
  EXPECT_THROW((void)mem_.info(424242), ApiError);
  EXPECT_FALSE(mem_.valid(424242));
}

TEST_F(MemoryTest, FreeWithPendingOpsThrows) {
  const ArrayId a = mem_.alloc(100, "a");
  mem_.info(a).pending_reads.insert(7);
  EXPECT_THROW(mem_.free_array(a), ApiError);
  mem_.info(a).erase_pending(7);
  mem_.info(a).pending_writes.insert(9);
  EXPECT_THROW(mem_.free_array(a), ApiError);
  mem_.info(a).erase_pending(9);
  EXPECT_NO_THROW(mem_.free_array(a));
}

TEST_F(MemoryTest, ResidencyFlagsRoundTrip) {
  const ArrayId a = mem_.alloc(100, "a");
  ArrayInfo& info = mem_.info(a);
  info.host_touched = true;
  info.on_device = true;
  info.host_dirty = false;
  EXPECT_FALSE(info.needs_h2d());
  info.host_dirty = true;  // host wrote: device copy stale again
  EXPECT_TRUE(info.needs_h2d());
}

}  // namespace
}  // namespace psched::sim
