// Schedule-time residency planning (ResidencyPlanner) guardrails.
//
// Golden guards: with lookahead 0, or with every announced device under
// capacity, the planner must be a strict no-op — timelines bit-identical
// (EXPECT_DOUBLE_EQ, no tolerance) to the admission-time eviction path the
// golden fixtures pin. Policy tests: Belady farthest-next-use victim
// order, the never-evict-nearer-frontier gate, wasted-prefetch
// accounting, and advisory-frontier mismatch robustness. Determinism: the
// prefetch schedule must be invariant across shuffled producer timings
// when driven through the concurrent ingest queue (`ctest -L prefetch`,
// also part of the sanitize and tsan gates).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "sim/ingest_queue.hpp"
#include "sim/runtime.hpp"

namespace psched::sim {
namespace {

constexpr std::size_t kMiB = 1u << 20;

LaunchSpec touch_kernel(ArrayId a) {
  LaunchSpec k;
  k.name = "touch";
  k.config = LaunchConfig::linear(16, 128);
  k.profile.flops_sp = 1e6;
  k.arrays = {{a, true}};
  return k;
}

/// A runtime with `n` host-initialized arrays of `bytes` each on a device
/// capped at `cap` bytes.
struct Rig {
  GpuRuntime rt;
  std::vector<ArrayId> arrays;

  Rig(std::size_t cap, int n, std::size_t bytes)
      : rt(make_machine(cap)) {
    for (int i = 0; i < n; ++i) {
      arrays.push_back(
          rt.alloc(bytes, std::string(1, static_cast<char>('a' + i))));
      rt.host_write(arrays.back());
    }
  }

  static Machine make_machine(std::size_t cap) {
    DeviceSpec spec = DeviceSpec::test_device();
    spec.memory_bytes = cap;
    return Machine::single(spec);
  }

  /// Sync-each drive of `rounds` cyclic passes over the arrays.
  void drive(int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (const ArrayId a : arrays) {
        rt.launch(kDefaultStream, touch_kernel(a));
        rt.synchronize_device();
      }
    }
  }

  [[nodiscard]] std::vector<FrontierEntry> cyclic_frontier(int rounds) const {
    std::vector<FrontierEntry> f;
    for (int r = 0; r < rounds; ++r) {
      for (const ArrayId a : arrays) f.push_back({kDefaultDevice, {a}});
    }
    return f;
  }
};

/// Bit-identical timeline comparison: same ops, same order, same times.
void expect_identical_timelines(GpuRuntime& got, GpuRuntime& want) {
  const auto& ge = got.timeline().entries();
  const auto& we = want.timeline().entries();
  ASSERT_EQ(ge.size(), we.size()) << "timeline length diverged";
  for (std::size_t i = 0; i < we.size(); ++i) {
    const std::string what = "entry " + std::to_string(i) + " (" +
                             we[i].name + ")";
    EXPECT_EQ(ge[i].kind, we[i].kind) << what;
    EXPECT_EQ(ge[i].stream, we[i].stream) << what;
    EXPECT_EQ(ge[i].name, we[i].name) << what;
    EXPECT_DOUBLE_EQ(ge[i].start, we[i].start) << what;
    EXPECT_DOUBLE_EQ(ge[i].end, we[i].end) << what;
  }
  EXPECT_DOUBLE_EQ(got.now(), want.now());
}

std::vector<std::string> evict_op_names(GpuRuntime& rt) {
  std::vector<std::string> names;
  for (const auto& e : rt.timeline().entries()) {
    if (e.name.rfind("evict:", 0) == 0) names.push_back(e.name);
  }
  return names;
}

// ---------------------------------------------------------------------
// Golden guards: planning must be a strict no-op where it promises to be.
// ---------------------------------------------------------------------

// Lookahead 0 disables the serve loop outright; an announced frontier must
// then change nothing — the admission-time eviction path (LRU victims,
// per-victim page-outs) runs byte for byte as with no frontier at all.
TEST(PrefetchGoldenGuard, LookaheadZeroBitIdenticalToAdmissionPath) {
  const std::size_t cap = 8 * kMiB;
  Rig plain(cap, 4, 3 * kMiB);  // 12 MiB over an 8 MiB device: 1.5x
  plain.drive(2);

  Rig planned(cap, 4, 3 * kMiB);
  planned.rt.set_lookahead(0);
  planned.rt.announce_frontier(planned.cyclic_frontier(2));
  planned.drive(2);
  planned.rt.clear_frontier();

  EXPECT_EQ(planned.rt.prefetch_ops(), 0);
  EXPECT_EQ(planned.rt.evict_ops(), plain.rt.evict_ops());
  EXPECT_EQ(planned.rt.fault_ops(), plain.rt.fault_ops());
  expect_identical_timelines(planned.rt, plain.rt);
}

// Under capacity, every device stays quiet (its announced load fits the
// headroom it had at announce time, and it never evicts): the planner must
// not issue a single op or perturb a single timestamp.
TEST(PrefetchGoldenGuard, UnderCapacityFrontierBitIdentical) {
  const std::size_t cap = 16 * kMiB;
  Rig plain(cap, 4, 2 * kMiB);  // 8 MiB on a 16 MiB device: 0.5x
  plain.drive(2);

  Rig planned(cap, 4, 2 * kMiB);
  planned.rt.announce_frontier(planned.cyclic_frontier(2));
  planned.drive(2);
  planned.rt.clear_frontier();

  EXPECT_EQ(planned.rt.prefetch_ops(), 0);
  EXPECT_EQ(planned.rt.evict_ops(), 0);
  EXPECT_EQ(plain.rt.evict_ops(), 0);
  expect_identical_timelines(planned.rt, plain.rt);
}

// ---------------------------------------------------------------------
// Victim policy under an active frontier.
// ---------------------------------------------------------------------

// Cap fits two of three 2 MiB arrays. Frontier a, b, c, b: when c's serve
// needs a frame, the victim must be a (never used again), not b (next use
// right after c) — Belady farthest-next-use, with the gate forbidding b
// outright (its next use is inside the served range's horizon).
TEST(PrefetchPolicy, BeladyVictimIsFarthestNextUse) {
  Rig rig(4 * kMiB, 3, 2 * kMiB);
  const ArrayId a = rig.arrays[0];
  const ArrayId b = rig.arrays[1];
  const ArrayId c = rig.arrays[2];
  rig.rt.announce_frontier({{kDefaultDevice, {a}},
                            {kDefaultDevice, {b}},
                            {kDefaultDevice, {c}},
                            {kDefaultDevice, {b}}});
  for (const ArrayId id : {a, b, c, b}) {
    rig.rt.launch(kDefaultStream, touch_kernel(id));
    rig.rt.synchronize_device();
  }
  rig.rt.clear_frontier();

  EXPECT_EQ(rig.rt.fault_ops(), 0) << "every miss should be served early";
  const std::vector<std::string> evicts = evict_op_names(rig.rt);
  ASSERT_EQ(evicts.size(), 1u);
  EXPECT_EQ(evicts.front(), "evict:a");
}

// a and b are resident before the frontier [a, c] is announced. Serving c
// needs one frame; a's pages are needed by a *nearer* frontier entry than
// anything the serve covers, so the victim must be b even though a and b
// are otherwise equivalent candidates.
TEST(PrefetchPolicy, NeverEvictsPagesANearerEntryNeeds) {
  Rig rig(4 * kMiB, 3, 2 * kMiB);
  const ArrayId a = rig.arrays[0];
  const ArrayId b = rig.arrays[1];
  const ArrayId c = rig.arrays[2];
  // Make a and b resident through the plain admission path.
  for (const ArrayId id : {a, b}) {
    rig.rt.launch(kDefaultStream, touch_kernel(id));
    rig.rt.synchronize_device();
  }
  const long faults_before = rig.rt.fault_ops();

  rig.rt.announce_frontier({{kDefaultDevice, {a}}, {kDefaultDevice, {c}}});
  for (const ArrayId id : {a, c}) {
    rig.rt.launch(kDefaultStream, touch_kernel(id));
    rig.rt.synchronize_device();
  }
  rig.rt.clear_frontier();

  EXPECT_EQ(rig.rt.fault_ops(), faults_before)
      << "the planned phase must not fault";
  const std::vector<std::string> evicts = evict_op_names(rig.rt);
  ASSERT_EQ(evicts.size(), 1u);
  EXPECT_EQ(evicts.front(), "evict:b");
}

// Pages fetched ahead of need but paged out before their entry consumes
// them are wasted work: the page-out must charge them to the wasted-bytes
// counter (and consumed prefetches must not be charged).
TEST(PrefetchPolicy, WastedPrefetchBytesAccounted) {
  Rig rig(4 * kMiB, 4, 2 * kMiB);
  const ArrayId a = rig.arrays[0];
  const ArrayId c = rig.arrays[2];
  const ArrayId d = rig.arrays[3];
  // First pass serves a and b together; launching a consumes a's bytes,
  // b's stay prefetched-but-unconsumed.
  rig.rt.announce_frontier(rig.cyclic_frontier(1));
  rig.rt.launch(kDefaultStream, touch_kernel(a));
  rig.rt.synchronize_device();
  EXPECT_DOUBLE_EQ(rig.rt.prefetch_bytes(), 4.0 * kMiB);
  EXPECT_EQ(rig.rt.wasted_prefetch_bytes(), 0u);
  // Drop the frontier and admit two other arrays: the LRU victim is the
  // untouched b, whose prefetched pages die unconsumed.
  rig.rt.clear_frontier();
  for (const ArrayId id : {c, d}) {
    rig.rt.launch(kDefaultStream, touch_kernel(id));
    rig.rt.synchronize_device();
  }
  EXPECT_EQ(rig.rt.wasted_prefetch_bytes(), 2 * kMiB);
}

// The frontier is advisory: a launch that diverges from the announced
// order must neither derail planning nor corrupt the position tracking —
// matching launches afterwards still advance the frontier.
TEST(PrefetchPolicy, AdvisoryMismatchKeepsPositionConsistent) {
  Rig rig(4 * kMiB, 3, 2 * kMiB);
  const ArrayId a = rig.arrays[0];
  const ArrayId b = rig.arrays[1];
  const ArrayId c = rig.arrays[2];
  rig.rt.announce_frontier({{kDefaultDevice, {a}},
                            {kDefaultDevice, {b}},
                            {kDefaultDevice, {c}}});
  // c first (not the announced head): no frontier advance.
  rig.rt.launch(kDefaultStream, touch_kernel(c));
  rig.rt.synchronize_device();
  EXPECT_EQ(rig.rt.memory().planner().frontier_remaining(), 3u);
  // a and b match the announced order from the head and advance past it.
  for (const ArrayId id : {a, b}) {
    rig.rt.launch(kDefaultStream, touch_kernel(id));
    rig.rt.synchronize_device();
  }
  EXPECT_EQ(rig.rt.memory().planner().frontier_remaining(), 1u);
  rig.rt.clear_frontier();
  EXPECT_EQ(rig.rt.memory().planner().frontier_remaining(), 0u);
}

// ---------------------------------------------------------------------
// Determinism through the concurrent ingestion front-end.
// ---------------------------------------------------------------------

// The same oversubscribed, frontier-announced drive submitted through the
// ingest queue must produce one schedule — bit-identical timelines and
// identical prefetch/evict counts — no matter how the producer's timing
// interleaves with the drain thread (shuffled sleeps, three seeds).
TEST(PrefetchIngestDeterminism, ScheduleInvariantAcrossProducerTimings) {
  struct Run {
    std::unique_ptr<Rig> rig;
    long prefetch_ops;
    long evict_ops;
  };
  std::vector<Run> runs;
  for (const unsigned seed : {1u, 2u, 3u}) {
    auto rig = std::make_unique<Rig>(8 * kMiB, 4, 4 * kMiB);  // 2.0x
    rig->rt.announce_frontier(rig->cyclic_frontier(2));
    {
      IngestService svc(rig->rt);
      std::mt19937 gen(seed);
      std::uniform_int_distribution<int> jitter_us(0, 300);
      for (int r = 0; r < 2; ++r) {
        for (const ArrayId id : rig->arrays) {
          svc.post_task(0, [id](GpuRuntime& g) {
            g.launch(kDefaultStream, touch_kernel(id));
            g.synchronize_device();
          });
          std::this_thread::sleep_for(
              std::chrono::microseconds(jitter_us(gen)));
        }
      }
      svc.flush_and_wait(0);
    }
    rig->rt.synchronize_device();
    rig->rt.clear_frontier();
    const long pf = rig->rt.prefetch_ops();
    const long ev = rig->rt.evict_ops();
    runs.push_back({std::move(rig), pf, ev});
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].prefetch_ops, runs[0].prefetch_ops);
    EXPECT_EQ(runs[i].evict_ops, runs[0].evict_ops);
    expect_identical_timelines(runs[i].rig->rt, runs[0].rig->rt);
  }
  EXPECT_GT(runs[0].prefetch_ops, 0);
}

}  // namespace
}  // namespace psched::sim
