#include <gtest/gtest.h>

#include "sim/timeline.hpp"

namespace psched::sim {
namespace {

TimelineEntry entry(OpKind kind, StreamId stream, TimeUs start, TimeUs end,
                    const std::string& name = "op") {
  TimelineEntry e;
  e.kind = kind;
  e.stream = stream;
  e.start = start;
  e.end = end;
  e.name = name;
  return e;
}

TEST(Timeline, EmptyDefaults) {
  Timeline t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.makespan(), 0);
  EXPECT_DOUBLE_EQ(t.total_kernel_time(), 0);
  const OverlapMetrics m = t.overlap_metrics();
  EXPECT_DOUBLE_EQ(m.ct, 0);
  EXPECT_DOUBLE_EQ(m.tot, 0);
}

TEST(Timeline, MakespanSpansFirstToLast) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 10, 20));
  t.record(entry(OpKind::CopyH2D, 1, 5, 8));
  t.record(entry(OpKind::Kernel, 1, 30, 45));
  EXPECT_DOUBLE_EQ(t.begin_time(), 5);
  EXPECT_DOUBLE_EQ(t.end_time(), 45);
  EXPECT_DOUBLE_EQ(t.makespan(), 40);
}

TEST(Timeline, MarkersAndHostSpansExcludedFromMakespan) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 10, 20));
  t.record(entry(OpKind::Host, 0, 0, 100));
  t.record(entry(OpKind::Marker, 0, 0, 200));
  EXPECT_DOUBLE_EQ(t.makespan(), 10);
}

TEST(Timeline, TotalsByCategory) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 10));
  t.record(entry(OpKind::Kernel, 1, 10, 15));
  t.record(entry(OpKind::CopyH2D, 0, 0, 4));
  t.record(entry(OpKind::Fault, 1, 4, 6));
  EXPECT_DOUBLE_EQ(t.total_kernel_time(), 15);
  EXPECT_DOUBLE_EQ(t.total_transfer_time(), 6);
}

TEST(Timeline, OverlapKernelWithTransfer) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 10));
  t.record(entry(OpKind::CopyH2D, 1, 5, 15));
  const OverlapMetrics m = t.overlap_metrics();
  EXPECT_DOUBLE_EQ(m.ct, 0.5);   // 5 of 10 kernel us under transfer
  EXPECT_DOUBLE_EQ(m.tc, 0.5);   // 5 of 10 transfer us under kernel
  EXPECT_DOUBLE_EQ(m.cc, 0.0);
  EXPECT_DOUBLE_EQ(m.tot, 0.5);  // 10 of 20 op us overlapped
}

TEST(Timeline, OverlapTwoIdenticalKernels) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 10));
  t.record(entry(OpKind::Kernel, 1, 0, 10));
  const OverlapMetrics m = t.overlap_metrics();
  EXPECT_DOUBLE_EQ(m.cc, 1.0);
  EXPECT_DOUBLE_EQ(m.ct, 0.0);
  EXPECT_DOUBLE_EQ(m.tot, 1.0);
}

TEST(Timeline, OverlapSerialScheduleIsZero) {
  Timeline t;
  t.record(entry(OpKind::CopyH2D, 0, 0, 5));
  t.record(entry(OpKind::Kernel, 0, 5, 15));
  t.record(entry(OpKind::CopyD2H, 0, 15, 20));
  const OverlapMetrics m = t.overlap_metrics();
  EXPECT_DOUBLE_EQ(m.ct, 0);
  EXPECT_DOUBLE_EQ(m.tc, 0);
  EXPECT_DOUBLE_EQ(m.cc, 0);
  EXPECT_DOUBLE_EQ(m.tot, 0);
}

TEST(Timeline, OverlapCountedOnceInTot) {
  // One kernel overlapped by two transfers simultaneously: the union of
  // overlap intervals counts once (section V-F).
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 10));
  t.record(entry(OpKind::CopyH2D, 1, 0, 10));
  t.record(entry(OpKind::CopyH2D, 2, 0, 10));
  const OverlapMetrics m = t.overlap_metrics();
  EXPECT_DOUBLE_EQ(m.ct, 1.0);
  EXPECT_DOUBLE_EQ(m.tot, 1.0);  // not > 1 despite double coverage
}

TEST(Timeline, MetricsBounded) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 7));
  t.record(entry(OpKind::Kernel, 1, 3, 12));
  t.record(entry(OpKind::Fault, 2, 1, 4));
  t.record(entry(OpKind::CopyD2H, 0, 8, 14));
  const OverlapMetrics m = t.overlap_metrics();
  for (double v : {m.ct, m.tc, m.cc, m.tot}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // TOT is at least as large as each category's contribution share.
  EXPECT_GE(m.tot, 0.0);
}

TEST(Timeline, KernelProfileAggregation) {
  Timeline t;
  TimelineEntry a = entry(OpKind::Kernel, 0, 0, 10);
  a.prof.flops_sp = 100;
  a.prof.dram_bytes = 50;
  TimelineEntry b = entry(OpKind::Kernel, 0, 10, 20);
  b.prof.flops_dp = 40;
  b.prof.dram_bytes = 30;
  b.prof.l2_bytes = 7;
  b.prof.instructions = 9;
  t.record(a);
  t.record(b);
  const KernelProfile p = t.total_kernel_profile();
  EXPECT_DOUBLE_EQ(p.flops_sp, 100);
  EXPECT_DOUBLE_EQ(p.flops_dp, 40);
  EXPECT_DOUBLE_EQ(p.flops_total(), 140);
  EXPECT_DOUBLE_EQ(p.dram_bytes, 80);
  EXPECT_DOUBLE_EQ(p.l2_bytes, 7);
  EXPECT_DOUBLE_EQ(p.instructions, 9);
}

TEST(Timeline, AsciiRenderContainsStreamsAndNames) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 10, "matmul"));
  t.record(entry(OpKind::CopyH2D, 1, 0, 5, "x"));
  const std::string s = t.render_ascii(40);
  EXPECT_NE(s.find("S0"), std::string::npos);
  EXPECT_NE(s.find("S1"), std::string::npos);
  EXPECT_NE(s.find("matmul"), std::string::npos);
  EXPECT_NE(s.find('>'), std::string::npos);  // transfer glyph
}

TEST(Timeline, CoverMergesAdjacentOps) {
  Timeline t;
  t.record(entry(OpKind::Kernel, 0, 0, 10));
  t.record(entry(OpKind::Kernel, 0, 10, 20));
  const IntervalSet k = t.kernel_cover();
  ASSERT_EQ(k.size(), 1u);
  EXPECT_DOUBLE_EQ(k.measure(), 20);
}

}  // namespace
}  // namespace psched::sim
