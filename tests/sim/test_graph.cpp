#include <gtest/gtest.h>

#include <map>

#include "sim/graph.hpp"
#include "sim/runtime.hpp"

namespace psched::sim {
namespace {

LaunchSpec kernel_spec(const std::string& name, std::vector<ArrayUse> arrays,
                       double flops_sp = 1e6) {
  LaunchSpec s;
  s.name = name;
  s.config = LaunchConfig::linear(16, 256);
  s.profile.flops_sp = flops_sp;
  s.arrays = std::move(arrays);
  return s;
}

std::map<std::string, TimelineEntry> kernels_by_name(const Timeline& t) {
  std::map<std::string, TimelineEntry> m;
  for (const auto& e : t.entries()) {
    if (e.kind == OpKind::Kernel) m[e.name] = e;
  }
  return m;
}

class GraphTest : public ::testing::Test {
 protected:
  GpuRuntime rt_{DeviceSpec::test_device()};
};

TEST_F(GraphTest, ManualDiamondRespectsDependencies) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  const auto root = g.add_kernel(kernel_spec("root", {{a, true}}));
  const auto left = g.add_kernel(kernel_spec("left", {{a, false}}));
  const auto right = g.add_kernel(kernel_spec("right", {{a, false}}));
  const auto join = g.add_kernel(kernel_spec("join", {{a, true}}));
  g.add_dependency(root, left);
  g.add_dependency(root, right);
  g.add_dependency(left, join);
  g.add_dependency(right, join);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);

  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();

  const auto k = kernels_by_name(rt_.timeline());
  ASSERT_EQ(k.size(), 4u);
  EXPECT_GE(k.at("left").start, k.at("root").end);
  EXPECT_GE(k.at("right").start, k.at("root").end);
  EXPECT_GE(k.at("join").start, k.at("left").end);
  EXPECT_GE(k.at("join").start, k.at("right").end);
}

TEST_F(GraphTest, IndependentBranchesUseDistinctStreams) {
  const ArrayId a = rt_.alloc(1000, "a");
  const ArrayId b = rt_.alloc(1000, "b");
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{b, true}}));
  auto exec = g.instantiate(rt_);
  EXPECT_NE(exec.stream_of(k1), exec.stream_of(k2));
  EXPECT_EQ(exec.num_streams_used(), 2u);
}

TEST_F(GraphTest, ChainStaysOnOneStream) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{a, true}}));
  const auto k3 = g.add_kernel(kernel_spec("k3", {{a, true}}));
  g.add_dependency(k1, k2);
  g.add_dependency(k2, k3);
  auto exec = g.instantiate(rt_);
  EXPECT_EQ(exec.stream_of(k1), exec.stream_of(k2));
  EXPECT_EQ(exec.stream_of(k2), exec.stream_of(k3));
  EXPECT_EQ(exec.num_streams_used(), 1u);
}

TEST_F(GraphTest, CycleDetected) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{a, true}}));
  g.add_dependency(k1, k2);
  g.add_dependency(k2, k1);
  EXPECT_THROW((void)g.instantiate(rt_), ApiError);
}

TEST_F(GraphTest, BadEdgeArgumentsThrow) {
  TaskGraph g;
  const auto k1 = g.add_empty("n");
  EXPECT_THROW(g.add_dependency(k1, k1), ApiError);
  EXPECT_THROW(g.add_dependency(k1, 99), ApiError);
  EXPECT_THROW(g.add_dependency(-1, k1), ApiError);
}

TEST_F(GraphTest, DuplicateEdgeIgnored) {
  TaskGraph g;
  const auto k1 = g.add_empty("a");
  const auto k2 = g.add_empty("b");
  g.add_dependency(k1, k2);
  g.add_dependency(k1, k2);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(GraphTest, RepeatedLaunchReplaysKernels) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  g.add_kernel(kernel_spec("k", {{a, true}}));
  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  exec.launch(rt_);
  rt_.synchronize_device();
  int kernel_count = 0;
  for (const auto& e : rt_.timeline().entries()) {
    if (e.kind == OpKind::Kernel) ++kernel_count;
  }
  EXPECT_EQ(kernel_count, 2);
}

TEST_F(GraphTest, InstantiationChargesHostTime) {
  TaskGraph g;
  g.add_empty("n1");
  g.add_empty("n2");
  const TimeUs before = rt_.now();
  (void)g.instantiate(rt_);
  EXPECT_DOUBLE_EQ(rt_.now() - before,
                   TaskGraph::kInstantiateBaseUs +
                       2 * TaskGraph::kInstantiatePerNodeUs);
}

TEST_F(GraphTest, CaptureRecordsStreamOrder) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  rt_.begin_capture(g);
  EXPECT_TRUE(rt_.capturing());
  rt_.launch(kDefaultStream, kernel_spec("k1", {{a, true}}));
  rt_.launch(kDefaultStream, kernel_spec("k2", {{a, true}}));
  rt_.end_capture();
  EXPECT_FALSE(rt_.capturing());
  // Nothing executed during capture.
  EXPECT_TRUE(rt_.timeline().empty());
  ASSERT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);  // same-stream issue order edge
}

TEST_F(GraphTest, CaptureRecordsCrossStreamEvents) {
  const StreamId s1 = rt_.create_stream();
  const StreamId s2 = rt_.create_stream();
  const EventId ev = rt_.create_event();
  const ArrayId a = rt_.alloc(1000, "a");
  const ArrayId b = rt_.alloc(1000, "b");

  TaskGraph g;
  rt_.begin_capture(g);
  rt_.launch(s1, kernel_spec("k1", {{a, true}}));
  rt_.record_event(ev, s1);
  rt_.stream_wait_event(s2, ev);
  rt_.launch(s2, kernel_spec("k2", {{b, true}}));
  rt_.end_capture();

  // Replaying must order k2 after k1.
  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  const auto k = kernels_by_name(rt_.timeline());
  EXPECT_GE(k.at("k2").start, k.at("k1").end);
}

TEST_F(GraphTest, CaptureDropsPrefetch) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  TaskGraph g;
  rt_.begin_capture(g);
  rt_.mem_prefetch_async(a, kDefaultStream);
  rt_.launch(kDefaultStream, kernel_spec("k", {{a, false}}));
  rt_.end_capture();
  EXPECT_TRUE(g.prefetch_dropped());
  ASSERT_EQ(g.num_nodes(), 1u);  // only the kernel

  // Replay: data migrates over the fault path instead.
  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  EXPECT_GT(rt_.bytes_faulted(), 0);
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 0);
}

TEST_F(GraphTest, CaptureKeepsExplicitCopies) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  TaskGraph g;
  rt_.begin_capture(g);
  rt_.memcpy_h2d_async(a, kDefaultStream);
  rt_.launch(kDefaultStream, kernel_spec("k", {{a, false}}));
  rt_.end_capture();
  ASSERT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);

  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 10000);
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 0);
}

// --- recorded replay (replayable submissions) ---------------------------

TEST_F(GraphTest, RecordedReplayMatchesBatchedOnTheFirstLaunch) {
  // The recording tees the batched lowering: first-launch timelines are
  // identical between Replay::Batched and Replay::Recorded.
  auto run = [](TaskGraph::Replay replay) {
    GpuRuntime rt{DeviceSpec::test_device()};
    const ArrayId a = rt.alloc(1000, "a");
    const ArrayId b = rt.alloc(1000, "b");
    rt.host_write(a);
    TaskGraph g;
    const auto root = g.add_kernel(kernel_spec("root", {{a, false}, {b, true}}));
    const auto left = g.add_kernel(kernel_spec("left", {{b, false}}));
    const auto right = g.add_kernel(kernel_spec("right", {{b, false}}));
    g.add_dependency(root, left);
    g.add_dependency(root, right);
    auto exec = g.instantiate(rt);
    exec.launch(rt, replay);
    rt.synchronize_device();
    return rt.timeline().entries();
  };
  const auto batched = run(TaskGraph::Replay::Batched);
  const auto recorded = run(TaskGraph::Replay::Recorded);
  ASSERT_EQ(batched.size(), recorded.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].name, recorded[i].name) << i;
    EXPECT_EQ(batched[i].start, recorded[i].start) << i;
    EXPECT_EQ(batched[i].end, recorded[i].end) << i;
  }
}

TEST_F(GraphTest, RecordedRelaunchReusesTheRecordingAllocationFree) {
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.host_write(a);
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{a, false}}));
  g.add_dependency(k1, k2);
  auto exec = g.instantiate(rt_);

  // First launch lowers and records.
  exec.launch(rt_, TaskGraph::Replay::Recorded);
  rt_.synchronize_device();
  ASSERT_TRUE(exec.has_recording());
  const Submission& rec = exec.recording();
  const void* buffer = rec.buffer_id();
  const std::size_t items = rec.size();
  EXPECT_GT(items, 0u);

  // Later launches are allocation-free on the submission path: the
  // recorded list is re-committed verbatim — not drained, not rebuilt,
  // not reallocated — and no ids vector is returned. The first replay
  // runs the one validation pass (sealing the list); the rest skip it.
  for (int i = 0; i < 3; ++i) {
    exec.launch(rt_, TaskGraph::Replay::Recorded);
    rt_.synchronize_device();
    EXPECT_EQ(rec.buffer_id(), buffer);
    EXPECT_EQ(rec.size(), items);
    EXPECT_TRUE(rec.sealed());
    EXPECT_EQ(rec.validations(), 1);
  }
  int kernel_count = 0;
  for (const auto& e : rt_.timeline().entries()) {
    if (e.kind == OpKind::Kernel) ++kernel_count;
  }
  EXPECT_EQ(kernel_count, 8);  // 4 launches x 2 kernels
}

TEST_F(GraphTest, RecordedRelaunchReplaysMigrationsStatically) {
  // CUDA Graphs' static replay: the migration recorded at first launch is
  // re-issued on every relaunch even though the data is still resident —
  // the recorded op list is frozen, not re-derived.
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  TaskGraph g;
  g.add_kernel(kernel_spec("k", {{a, false}}));
  auto exec = g.instantiate(rt_);
  exec.launch(rt_, TaskGraph::Replay::Recorded);
  rt_.synchronize_device();
  exec.launch(rt_, TaskGraph::Replay::Recorded);
  rt_.synchronize_device();
  int faults = 0;
  for (const auto& e : rt_.timeline().entries()) {
    if (e.kind == OpKind::Fault) ++faults;
  }
  EXPECT_EQ(faults, 2);
}

TEST_F(GraphTest, RecordedRelaunchReappliesWriteTransitions) {
  // Replayed write-kernels re-invalidate host/peer copies (the residency
  // transition lives in the recorded bind): a host read after every
  // relaunch migrates the fresh result back, exactly like per-call issue.
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  TaskGraph g;
  g.add_kernel(kernel_spec("k", {{a, true}}));
  auto exec = g.instantiate(rt_);
  exec.launch(rt_, TaskGraph::Replay::Recorded);
  rt_.synchronize_device();
  rt_.host_read(a);
  const double d2h_after_first = rt_.bytes_d2h();
  EXPECT_GT(d2h_after_first, 0);

  exec.launch(rt_, TaskGraph::Replay::Recorded);  // replay re-writes `a`
  rt_.synchronize_device();
  EXPECT_TRUE(rt_.memory().info(a).device_dirty);
  rt_.host_read(a);  // must migrate the replayed result back
  EXPECT_GT(rt_.bytes_d2h(), d2h_after_first);
}

TEST_F(GraphTest, FailedRecordingDetachesAndDiscards) {
  // A lowering that throws mid-recording (single-op working set beyond
  // device capacity) must leave the runtime not recording and the Exec
  // without a half-built recording; the runtime stays usable.
  DeviceSpec spec = DeviceSpec::test_device();
  spec.memory_bytes = 8000;
  GpuRuntime rt{spec};
  const ArrayId big = rt.alloc(16000, "big");
  const ArrayId small = rt.alloc(1000, "small");
  rt.host_write(big);
  rt.host_write(small);
  TaskGraph bad;
  bad.add_kernel(kernel_spec("kb", {{big, true}}));
  auto bad_exec = bad.instantiate(rt);
  EXPECT_THROW(bad_exec.launch(rt, TaskGraph::Replay::Recorded),
               OutOfMemoryError);
  EXPECT_FALSE(rt.recording());
  EXPECT_FALSE(bad_exec.has_recording());
  EXPECT_TRUE(bad_exec.recording().empty());
  // The batch the recording opened was closed too: the runtime is back in
  // per-call mode and an explicit batch can be opened normally.
  EXPECT_FALSE(rt.submitting());
  rt.begin_submit();
  rt.commit();

  TaskGraph ok;
  ok.add_kernel(kernel_spec("ks", {{small, true}}));
  auto ok_exec = ok.instantiate(rt);
  ok_exec.launch(rt, TaskGraph::Replay::Recorded);
  rt.synchronize_device();
  EXPECT_TRUE(ok_exec.has_recording());
}

TEST_F(GraphTest, RecordedRelaunchJoinsAnOpenBatch) {
  // Like a Batched launch, a Recorded relaunch inside a user batch joins
  // it: the recording ingests into the open transaction and nothing is
  // flushed before the user's commit.
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.host_write(a);
  TaskGraph g;
  g.add_kernel(kernel_spec("k", {{a, true}}));
  auto exec = g.instantiate(rt_);
  exec.launch(rt_, TaskGraph::Replay::Recorded);
  rt_.synchronize_device();

  rt_.begin_submit();
  rt_.launch(kDefaultStream, kernel_spec("k0", {{a, true}}));
  const long commits_before = rt_.batch_commits();
  exec.launch(rt_, TaskGraph::Replay::Recorded);
  EXPECT_TRUE(rt_.submitting());
  EXPECT_EQ(rt_.batch_commits(), commits_before);  // no early flush
  rt_.commit();
  rt_.synchronize_device();
  int kernels = 0;
  for (const auto& e : rt_.timeline().entries()) {
    if (e.kind == OpKind::Kernel) ++kernels;
  }
  EXPECT_EQ(kernels, 3);  // first launch + k0 + the joined replay
}

TEST_F(GraphTest, EvictionServicingIsNotBakedIntoRecordings) {
  // A first Recorded launch that evicts a bystander must not record the
  // page-out or its gate: replays admit nothing, so re-executing the
  // write-back would inflate every relaunch with phantom D2H traffic.
  DeviceSpec spec = DeviceSpec::test_device();
  spec.memory_bytes = 8000;
  GpuRuntime rt{spec};
  const ArrayId bystander = rt.alloc(8000, "bystander");
  const ArrayId w = rt.alloc(8000, "w");
  rt.host_write(bystander);
  rt.host_write(w);
  rt.launch(kDefaultStream, kernel_spec("kb", {{bystander, true}}));
  rt.synchronize_device();  // bystander: only copy on device

  TaskGraph g;
  g.add_kernel(kernel_spec("kw", {{w, true}}));
  auto exec = g.instantiate(rt);
  exec.launch(rt, TaskGraph::Replay::Recorded);  // evicts bystander
  rt.synchronize_device();
  EXPECT_EQ(rt.evict_ops(), 1);
  exec.launch(rt, TaskGraph::Replay::Recorded);  // replay: no admission
  rt.synchronize_device();
  int evict_entries = 0;
  for (const auto& e : rt.timeline().entries()) {
    if (e.kind == OpKind::CopyD2H) ++evict_entries;
  }
  EXPECT_EQ(evict_entries, 1);  // the recorded replay added none
}

TEST_F(GraphTest, WaitOnEventOutsideCaptureThrows) {
  TaskGraph g;
  const EventId ev = rt_.create_event();
  rt_.begin_capture(g);
  EXPECT_THROW(rt_.stream_wait_event(kDefaultStream, ev), ApiError);
  rt_.end_capture();
}

TEST_F(GraphTest, NestedCaptureThrows) {
  TaskGraph g1, g2;
  rt_.begin_capture(g1);
  EXPECT_THROW(rt_.begin_capture(g2), ApiError);
  rt_.end_capture();
  EXPECT_THROW(rt_.end_capture(), ApiError);
}

}  // namespace
}  // namespace psched::sim
