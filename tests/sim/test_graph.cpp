#include <gtest/gtest.h>

#include <map>

#include "sim/graph.hpp"
#include "sim/runtime.hpp"

namespace psched::sim {
namespace {

LaunchSpec kernel_spec(const std::string& name, std::vector<ArrayUse> arrays,
                       double flops_sp = 1e6) {
  LaunchSpec s;
  s.name = name;
  s.config = LaunchConfig::linear(16, 256);
  s.profile.flops_sp = flops_sp;
  s.arrays = std::move(arrays);
  return s;
}

std::map<std::string, TimelineEntry> kernels_by_name(const Timeline& t) {
  std::map<std::string, TimelineEntry> m;
  for (const auto& e : t.entries()) {
    if (e.kind == OpKind::Kernel) m[e.name] = e;
  }
  return m;
}

class GraphTest : public ::testing::Test {
 protected:
  GpuRuntime rt_{DeviceSpec::test_device()};
};

TEST_F(GraphTest, ManualDiamondRespectsDependencies) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  const auto root = g.add_kernel(kernel_spec("root", {{a, true}}));
  const auto left = g.add_kernel(kernel_spec("left", {{a, false}}));
  const auto right = g.add_kernel(kernel_spec("right", {{a, false}}));
  const auto join = g.add_kernel(kernel_spec("join", {{a, true}}));
  g.add_dependency(root, left);
  g.add_dependency(root, right);
  g.add_dependency(left, join);
  g.add_dependency(right, join);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);

  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();

  const auto k = kernels_by_name(rt_.timeline());
  ASSERT_EQ(k.size(), 4u);
  EXPECT_GE(k.at("left").start, k.at("root").end);
  EXPECT_GE(k.at("right").start, k.at("root").end);
  EXPECT_GE(k.at("join").start, k.at("left").end);
  EXPECT_GE(k.at("join").start, k.at("right").end);
}

TEST_F(GraphTest, IndependentBranchesUseDistinctStreams) {
  const ArrayId a = rt_.alloc(1000, "a");
  const ArrayId b = rt_.alloc(1000, "b");
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{b, true}}));
  auto exec = g.instantiate(rt_);
  EXPECT_NE(exec.stream_of(k1), exec.stream_of(k2));
  EXPECT_EQ(exec.num_streams_used(), 2u);
}

TEST_F(GraphTest, ChainStaysOnOneStream) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{a, true}}));
  const auto k3 = g.add_kernel(kernel_spec("k3", {{a, true}}));
  g.add_dependency(k1, k2);
  g.add_dependency(k2, k3);
  auto exec = g.instantiate(rt_);
  EXPECT_EQ(exec.stream_of(k1), exec.stream_of(k2));
  EXPECT_EQ(exec.stream_of(k2), exec.stream_of(k3));
  EXPECT_EQ(exec.num_streams_used(), 1u);
}

TEST_F(GraphTest, CycleDetected) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  const auto k1 = g.add_kernel(kernel_spec("k1", {{a, true}}));
  const auto k2 = g.add_kernel(kernel_spec("k2", {{a, true}}));
  g.add_dependency(k1, k2);
  g.add_dependency(k2, k1);
  EXPECT_THROW((void)g.instantiate(rt_), ApiError);
}

TEST_F(GraphTest, BadEdgeArgumentsThrow) {
  TaskGraph g;
  const auto k1 = g.add_empty("n");
  EXPECT_THROW(g.add_dependency(k1, k1), ApiError);
  EXPECT_THROW(g.add_dependency(k1, 99), ApiError);
  EXPECT_THROW(g.add_dependency(-1, k1), ApiError);
}

TEST_F(GraphTest, DuplicateEdgeIgnored) {
  TaskGraph g;
  const auto k1 = g.add_empty("a");
  const auto k2 = g.add_empty("b");
  g.add_dependency(k1, k2);
  g.add_dependency(k1, k2);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST_F(GraphTest, RepeatedLaunchReplaysKernels) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  g.add_kernel(kernel_spec("k", {{a, true}}));
  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  exec.launch(rt_);
  rt_.synchronize_device();
  int kernel_count = 0;
  for (const auto& e : rt_.timeline().entries()) {
    if (e.kind == OpKind::Kernel) ++kernel_count;
  }
  EXPECT_EQ(kernel_count, 2);
}

TEST_F(GraphTest, InstantiationChargesHostTime) {
  TaskGraph g;
  g.add_empty("n1");
  g.add_empty("n2");
  const TimeUs before = rt_.now();
  (void)g.instantiate(rt_);
  EXPECT_DOUBLE_EQ(rt_.now() - before,
                   TaskGraph::kInstantiateBaseUs +
                       2 * TaskGraph::kInstantiatePerNodeUs);
}

TEST_F(GraphTest, CaptureRecordsStreamOrder) {
  const ArrayId a = rt_.alloc(1000, "a");
  TaskGraph g;
  rt_.begin_capture(g);
  EXPECT_TRUE(rt_.capturing());
  rt_.launch(kDefaultStream, kernel_spec("k1", {{a, true}}));
  rt_.launch(kDefaultStream, kernel_spec("k2", {{a, true}}));
  rt_.end_capture();
  EXPECT_FALSE(rt_.capturing());
  // Nothing executed during capture.
  EXPECT_TRUE(rt_.timeline().empty());
  ASSERT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);  // same-stream issue order edge
}

TEST_F(GraphTest, CaptureRecordsCrossStreamEvents) {
  const StreamId s1 = rt_.create_stream();
  const StreamId s2 = rt_.create_stream();
  const EventId ev = rt_.create_event();
  const ArrayId a = rt_.alloc(1000, "a");
  const ArrayId b = rt_.alloc(1000, "b");

  TaskGraph g;
  rt_.begin_capture(g);
  rt_.launch(s1, kernel_spec("k1", {{a, true}}));
  rt_.record_event(ev, s1);
  rt_.stream_wait_event(s2, ev);
  rt_.launch(s2, kernel_spec("k2", {{b, true}}));
  rt_.end_capture();

  // Replaying must order k2 after k1.
  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  const auto k = kernels_by_name(rt_.timeline());
  EXPECT_GE(k.at("k2").start, k.at("k1").end);
}

TEST_F(GraphTest, CaptureDropsPrefetch) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  TaskGraph g;
  rt_.begin_capture(g);
  rt_.mem_prefetch_async(a, kDefaultStream);
  rt_.launch(kDefaultStream, kernel_spec("k", {{a, false}}));
  rt_.end_capture();
  EXPECT_TRUE(g.prefetch_dropped());
  ASSERT_EQ(g.num_nodes(), 1u);  // only the kernel

  // Replay: data migrates over the fault path instead.
  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  EXPECT_GT(rt_.bytes_faulted(), 0);
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 0);
}

TEST_F(GraphTest, CaptureKeepsExplicitCopies) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  TaskGraph g;
  rt_.begin_capture(g);
  rt_.memcpy_h2d_async(a, kDefaultStream);
  rt_.launch(kDefaultStream, kernel_spec("k", {{a, false}}));
  rt_.end_capture();
  ASSERT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);

  auto exec = g.instantiate(rt_);
  exec.launch(rt_);
  rt_.synchronize_device();
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 10000);
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 0);
}

TEST_F(GraphTest, WaitOnEventOutsideCaptureThrows) {
  TaskGraph g;
  const EventId ev = rt_.create_event();
  rt_.begin_capture(g);
  EXPECT_THROW(rt_.stream_wait_event(kDefaultStream, ev), ApiError);
  rt_.end_capture();
}

TEST_F(GraphTest, NestedCaptureThrows) {
  TaskGraph g1, g2;
  rt_.begin_capture(g1);
  EXPECT_THROW(rt_.begin_capture(g2), ApiError);
  rt_.end_capture();
  EXPECT_THROW(rt_.end_capture(), ApiError);
}

}  // namespace
}  // namespace psched::sim
