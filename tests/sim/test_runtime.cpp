#include <gtest/gtest.h>

#include <vector>

#include "sim/runtime.hpp"

namespace psched::sim {
namespace {

LaunchSpec simple_kernel(const std::string& name, std::vector<ArrayUse> arrays,
                         double flops_sp = 1e6) {
  LaunchSpec s;
  s.name = name;
  s.config = LaunchConfig::linear(16, 256);  // fills the 4-SM test device
  s.profile.flops_sp = flops_sp;
  s.arrays = std::move(arrays);
  return s;
}

class RuntimeTest : public ::testing::Test {
 protected:
  GpuRuntime rt_{DeviceSpec::test_device()};
};

TEST_F(RuntimeTest, HostClockAdvances) {
  EXPECT_DOUBLE_EQ(rt_.now(), 0);
  rt_.host_advance(10);
  EXPECT_DOUBLE_EQ(rt_.now(), 10);
  EXPECT_THROW(rt_.host_advance(-1), ApiError);
}

TEST_F(RuntimeTest, LaunchCostsHostOverhead) {
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  EXPECT_DOUBLE_EQ(rt_.now(), GpuRuntime::kLaunchCpuOverheadUs);
}

TEST_F(RuntimeTest, StaleArrayFaultsOnPascalPlus) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);  // host initializes the input
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  rt_.synchronize_device();
  const auto& entries = rt_.timeline().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, OpKind::Fault);
  EXPECT_DOUBLE_EQ(entries[0].bytes, 10000);
  EXPECT_EQ(entries[1].kind, OpKind::Kernel);
  // The kernel starts only after its data has migrated.
  EXPECT_GE(entries[1].start, entries[0].end);
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 10000);
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 0);
}

TEST_F(RuntimeTest, PrePascalCopiesAheadAtFullBandwidth) {
  DeviceSpec spec = DeviceSpec::test_device();
  spec.page_fault_um = false;
  GpuRuntime rt(spec);
  const ArrayId a = rt.alloc(10000, "a");
  rt.host_write(a);
  rt.launch(kDefaultStream, simple_kernel("k", {{a, false}}));
  rt.synchronize_device();
  const auto& entries = rt.timeline().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, OpKind::CopyH2D);
  // Full PCIe bandwidth: 1e4 bytes at 1e4 B/us = 1us.
  EXPECT_NEAR(entries[0].end - entries[0].start, 1.0, 1e-9);
}

TEST_F(RuntimeTest, PrefetchAvoidsFault) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  rt_.mem_prefetch_async(a, kDefaultStream);
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, false}}));
  rt_.synchronize_device();
  const auto& entries = rt_.timeline().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].kind, OpKind::CopyH2D);  // full-bandwidth prefetch
  EXPECT_EQ(entries[1].kind, OpKind::Kernel);
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 0);
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 10000);
}

TEST_F(RuntimeTest, PrefetchOfUpToDateArrayIsNoop) {
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.host_write(a);
  rt_.mem_prefetch_async(a, kDefaultStream);
  rt_.mem_prefetch_async(a, kDefaultStream);  // second one: nothing to move
  rt_.synchronize_device();
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 10000);
}

TEST_F(RuntimeTest, UntouchedArrayNeverMigrates) {
  // First-touch semantics: an allocation the host never wrote has no data
  // to move — neither an explicit prefetch nor a kernel launch transfers
  // anything (kernel output buffers materialize directly on the device).
  const ArrayId a = rt_.alloc(10000, "a");
  rt_.mem_prefetch_async(a, kDefaultStream);
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  rt_.synchronize_device();
  EXPECT_DOUBLE_EQ(rt_.bytes_h2d(), 0);
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 0);
  // Once written on device, a host write invalidates and re-arms migration.
  rt_.set_strict_hazards(false);
  rt_.host_write(a);
  rt_.launch(kDefaultStream, simple_kernel("k2", {{a, false}}));
  rt_.synchronize_device();
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 10000);
}

TEST_F(RuntimeTest, CrossStreamMigrationOrdersSecondKernel) {
  const StreamId s1 = rt_.create_stream();
  const StreamId s2 = rt_.create_stream();
  const ArrayId a = rt_.alloc(50000, "a");
  rt_.host_write(a);
  // Both kernels read the same stale array from different streams: only one
  // migration happens, and the second kernel must wait for it.
  rt_.launch(s1, simple_kernel("k1", {{a, false}}));
  rt_.launch(s2, simple_kernel("k2", {{a, false}}));
  rt_.synchronize_device();
  const auto& entries = rt_.timeline().entries();
  int migrations = 0;
  TimeUs mig_end = 0;
  TimeUs k2_start = 0;
  for (const auto& e : entries) {
    if (is_transfer(e.kind)) {
      ++migrations;
      mig_end = e.end;
    }
    if (e.name == "k2") k2_start = e.start;
  }
  EXPECT_EQ(migrations, 1);
  EXPECT_GE(k2_start, mig_end);
}

TEST_F(RuntimeTest, HostReadWithoutSyncIsHazard) {
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  EXPECT_THROW(rt_.host_read(a), ApiError);
  EXPECT_EQ(rt_.hazard_count(), 1);
}

TEST_F(RuntimeTest, NonStrictHazardBlocksInstead) {
  rt_.set_strict_hazards(false);
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  rt_.host_read(a);  // blocks until the kernel drains, then migrates back
  EXPECT_EQ(rt_.hazard_count(), 1);
  EXPECT_GT(rt_.bytes_d2h(), 0);
}

TEST_F(RuntimeTest, SyncThenReadMigratesBack) {
  const ArrayId a = rt_.alloc(4000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  rt_.synchronize_stream(kDefaultStream);
  rt_.host_read(a);
  EXPECT_EQ(rt_.hazard_count(), 0);
  EXPECT_DOUBLE_EQ(rt_.bytes_d2h(), 4000);
  // Second read: nothing more to migrate.
  rt_.host_read(a);
  EXPECT_DOUBLE_EQ(rt_.bytes_d2h(), 4000);
}

TEST_F(RuntimeTest, ReadOnlyKernelLeavesDeviceClean) {
  const ArrayId a = rt_.alloc(4000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, false}}));
  rt_.synchronize_device();
  rt_.host_read(a);
  EXPECT_DOUBLE_EQ(rt_.bytes_d2h(), 0);  // device copy never became dirty
}

TEST_F(RuntimeTest, HostReadConcurrentWithDeviceReadIsAllowed) {
  // Pascal+ unified memory: the CPU may read an array that kernels are
  // only *reading* — no hazard.
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k0", {{a, true}}));
  rt_.synchronize_device();
  rt_.host_read(a);  // pull data back so it is clean on both sides
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, false}}, 1e8));
  EXPECT_NO_THROW(rt_.host_read(a));
  EXPECT_EQ(rt_.hazard_count(), 0);
  // But a host write during a device read is a conflict.
  EXPECT_THROW(rt_.host_write(a), ApiError);
  EXPECT_EQ(rt_.hazard_count(), 1);
  rt_.synchronize_device();
}

TEST_F(RuntimeTest, PrePascalForbidsConcurrentHostRead) {
  DeviceSpec spec = DeviceSpec::test_device();
  spec.page_fault_um = false;
  GpuRuntime rt(spec);
  const ArrayId a = rt.alloc(1000, "a");
  rt.launch(kDefaultStream, simple_kernel("k", {{a, false}}, 1e8));
  EXPECT_THROW(rt.host_read(a), ApiError);
  EXPECT_EQ(rt.hazard_count(), 1);
  rt.synchronize_device();
  EXPECT_NO_THROW(rt.host_read(a));
}

TEST_F(RuntimeTest, HostWriteInvalidatesDeviceCopy) {
  const ArrayId a = rt_.alloc(6000, "a");
  rt_.host_write(a);
  rt_.launch(kDefaultStream, simple_kernel("k1", {{a, false}}));
  rt_.synchronize_device();
  rt_.host_write(a);  // new input data (streaming pattern)
  rt_.launch(kDefaultStream, simple_kernel("k2", {{a, false}}));
  rt_.synchronize_device();
  // Two separate migrations of 6000 bytes each.
  EXPECT_DOUBLE_EQ(rt_.bytes_faulted(), 12000);
}

TEST_F(RuntimeTest, FunctionalExecutionRunsAtCompletion) {
  const ArrayId a = rt_.alloc(1000, "a");
  bool ran = false;
  LaunchSpec s = simple_kernel("k", {{a, true}});
  s.functional = [&ran] { ran = true; };
  rt_.launch(kDefaultStream, s);
  EXPECT_FALSE(ran);  // asynchronous: not yet complete
  rt_.synchronize_device();
  EXPECT_TRUE(ran);
}

TEST_F(RuntimeTest, FunctionalExecutionOrderFollowsDependencies) {
  const StreamId s1 = rt_.create_stream();
  const StreamId s2 = rt_.create_stream();
  const EventId ev = rt_.create_event();
  const ArrayId a = rt_.alloc(1000, "a");
  const ArrayId b = rt_.alloc(1000, "b");
  std::vector<int> order;
  LaunchSpec k1 = simple_kernel("k1", {{a, true}}, 5e6);
  k1.functional = [&order] { order.push_back(1); };
  LaunchSpec k2 = simple_kernel("k2", {{b, true}}, 1e5);
  k2.functional = [&order] { order.push_back(2); };
  rt_.launch(s1, k1);
  rt_.record_event(ev, s1);
  rt_.stream_wait_event(s2, ev);
  rt_.launch(s2, k2);  // k2 must observe k1's completion first
  rt_.synchronize_device();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST_F(RuntimeTest, SynchronizeEventAdvancesHost) {
  const EventId ev = rt_.create_event();
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  rt_.record_event(ev, kDefaultStream);
  rt_.synchronize_event(ev);
  EXPECT_TRUE(rt_.event_done(ev));
  EXPECT_GT(rt_.now(), GpuRuntime::kLaunchCpuOverheadUs);
}

TEST_F(RuntimeTest, StreamIdleQuery) {
  const StreamId s1 = rt_.create_stream();
  EXPECT_TRUE(rt_.stream_idle(s1));
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(s1, simple_kernel("k", {{a, true}}));
  EXPECT_FALSE(rt_.stream_idle(s1));
  rt_.synchronize_stream(s1);
  EXPECT_TRUE(rt_.stream_idle(s1));
}

TEST_F(RuntimeTest, AttachArrayBookkeeping) {
  const StreamId s1 = rt_.create_stream();
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.attach_array(a, s1);
  EXPECT_EQ(rt_.memory().info(a).attached_stream, s1);
  rt_.host_write(a);  // host takes the array back
  EXPECT_EQ(rt_.memory().info(a).attached_stream, kInvalidStream);
}

TEST_F(RuntimeTest, FreeInUseArrayThrows) {
  const ArrayId a = rt_.alloc(1000, "a");
  rt_.launch(kDefaultStream, simple_kernel("k", {{a, true}}));
  EXPECT_THROW(rt_.free_array(a), ApiError);
  rt_.synchronize_device();
  EXPECT_NO_THROW(rt_.free_array(a));
}

TEST_F(RuntimeTest, TransferComputeOverlapBeatsSerial) {
  // Two streams: stream A runs a long kernel on resident data while stream
  // B prefetches other data — the prefetch must overlap the kernel.
  const StreamId s1 = rt_.create_stream();
  const StreamId s2 = rt_.create_stream();
  const ArrayId a = rt_.alloc(1000, "a");
  const ArrayId b = rt_.alloc(5e6, "b");
  rt_.host_write(a);
  rt_.host_write(b);
  rt_.launch(s1, simple_kernel("warm", {{a, true}}));  // migrates a (small)
  rt_.synchronize_device();

  rt_.launch(s1, simple_kernel("k1", {{a, false}}, /*flops=*/3e8));
  rt_.mem_prefetch_async(b, s2);
  rt_.synchronize_device();

  const auto metrics = rt_.timeline().overlap_metrics();
  EXPECT_GT(metrics.tc, 0.5);  // most of the transfer hides under compute
}

}  // namespace
}  // namespace psched::sim
