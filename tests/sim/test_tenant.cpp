// Multi-tenant scheduling: weighted fair sharing across tenants inside a
// resource class, quota-biased LRU eviction, per-tenant accounting and
// OOM attribution, and tenant tagging through streams, transactions, and
// recorded replays.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../../bench/multi_app_scenario.hpp"
#include "sim/tenant.hpp"
#include "sim_test_util.hpp"

namespace psched::sim {
namespace {

/// The saturating test kernel: fills the whole test device (sm_demand 4,
/// occupancy 1.0) and runs 5us solo, so N concurrent instances share the
/// kernel class at rate 1/N each — fair-sharing arithmetic is exact.
LaunchSpec full_kernel(const std::string& name) {
  LaunchSpec k;
  k.name = name;
  k.config = LaunchConfig::linear(8, 512);
  k.profile.flops_sp = 2.56e6;
  return k;
}

// ---------------------------------------------------------------------
// Weighted fair sharing — asserted on the exact scenario the bench
// ratchet gates (bench/multi_app_scenario.hpp), so the acceptance
// number and the test can never diverge.
// ---------------------------------------------------------------------

TEST(TenantFairSharing, WeightTwoTenantGetsTwiceTheThroughput) {
  // The acceptance bound: 2x +- 10% under a saturated class.
  const auto w = psched::bench::run_weighted_pair(/*smoke=*/false, 2.0, 1.0);
  EXPECT_GT(w.work_ratio, 1.8);
  EXPECT_LT(w.work_ratio, 2.2);
}

TEST(TenantFairSharing, EqualWeightsShareEqually) {
  const auto w = psched::bench::run_weighted_pair(/*smoke=*/false, 1.0, 1.0);
  EXPECT_NEAR(w.work_ratio, 1.0, 0.05);
}

TEST(TenantFairSharing, CappedTenantSurplusFlowsToOthers) {
  // Lightly-loaded kernel class where the weight-2 tenant's target
  // exceeds solo speed: its rate caps at 1.0 and the surplus must flow
  // to the weight-1 tenant — the class aggregate matches the unweighted
  // run exactly (work conservation) instead of idling the device.
  auto progress_at = [](bool weighted, TimeUs at) {
    Engine eng(DeviceSpec::test_device());
    if (weighted) eng.set_tenant_weight(1, 2.0);
    const StreamId s1 = eng.create_stream(kDefaultDevice, 1);
    const StreamId s2 = eng.create_stream(kDefaultDevice, 2);
    // fill 0.05 each: base rate ~0.82, so the weighted 2/3 target (~1.1)
    // crosses the 1.0 cap.
    eng.enqueue(test::raw_kernel(s1, 10.0, 1, 0.2), 0);
    eng.enqueue(test::raw_kernel(s2, 10.0, 1, 0.2), 0);
    eng.advance_to(at);
    const auto work = [&eng](TenantId t) {
      return eng.tenant_completed_work(t) + eng.tenant_inflight_work(t);
    };
    return std::make_pair(work(1), work(2));
  };
  const auto [uw_hi, uw_lo] = progress_at(false, 5.0);
  EXPECT_DOUBLE_EQ(uw_hi, uw_lo);  // equal weights: identical shares
  const auto [w_hi, w_lo] = progress_at(true, 5.0);
  EXPECT_NEAR(w_hi, 5.0, 1e-9);              // capped at solo speed
  EXPECT_GT(w_lo, uw_lo * 0.5);              // got the surplus, not 1/3
  EXPECT_NEAR(w_hi + w_lo, uw_hi + uw_lo, 1e-9);  // aggregate conserved
}

TEST(TenantFairSharing, WeightChangeAppliesImmediately) {
  // Dynamic re-weighting (the QoS entry point): changing a weight while
  // ops are mid-flight re-prices them at the call, not at the next
  // unrelated membership churn.
  Engine eng(DeviceSpec::test_device());
  const StreamId s1 = eng.create_stream(kDefaultDevice, 1);
  const StreamId s2 = eng.create_stream(kDefaultDevice, 2);
  // Saturated: fill 1.0 each, base rate 0.5 apiece.
  eng.enqueue(test::raw_kernel(s1, 100.0, 4, 1.0), 0);
  eng.enqueue(test::raw_kernel(s2, 100.0, 4, 1.0), 0);
  eng.advance_to(10.0);  // 5.0 work each at equal weights
  eng.set_tenant_weight(1, 3.0);
  eng.advance_to(20.0);  // [10, 20]: rates 0.75 / 0.25
  EXPECT_NEAR(eng.tenant_inflight_work(1), 12.5, 1e-9);
  EXPECT_NEAR(eng.tenant_inflight_work(2), 7.5, 1e-9);
}

TEST(TenantFairSharing, FaultClassSharesByWeight) {
  // Two equal-size fault migrations in flight together (faults are not
  // DMA-serialized): the weight-2 tenant's fault gets 2/3 of the
  // contended fault-path bandwidth. test_device: fault bw 5e3 bytes/us,
  // two faults de-rate it to 5e3/1.3. With weights {2, 1}:
  //   hi rate = (2/3)(5e3/1.3) -> 1e6 bytes end at exactly 390us;
  //   lo holds 5e5 bytes at hi's finish, then runs solo -> ends at 490us.
  // With equal weights both migrate at half the de-rated path: 520us.
  auto fault_ends = [](double w_hi) {
    Engine eng(DeviceSpec::test_device());
    eng.set_tenant_weight(1, w_hi);
    eng.set_tenant_weight(2, 1.0);
    const StreamId s1 = eng.create_stream(kDefaultDevice, 1);
    const StreamId s2 = eng.create_stream(kDefaultDevice, 2);
    const OpId f1 = eng.enqueue(test::raw_copy(s1, OpKind::Fault, 1e6), 0);
    const OpId f2 = eng.enqueue(test::raw_copy(s2, OpKind::Fault, 1e6), 0);
    eng.run_all();
    return std::make_pair(eng.op(f1).end_time, eng.op(f2).end_time);
  };
  const auto [w_hi, w_lo] = fault_ends(2.0);
  EXPECT_NEAR(w_hi, 390.0, 1e-6);
  EXPECT_NEAR(w_lo, 490.0, 1e-6);
  const auto [e_hi, e_lo] = fault_ends(1.0);
  EXPECT_NEAR(e_hi, 520.0, 1e-6);
  EXPECT_DOUBLE_EQ(e_hi, e_lo);
}

// ---------------------------------------------------------------------
// Quota-biased eviction (MemoryManager level: exact victim control)
// ---------------------------------------------------------------------

DeviceSpec tiny_device(std::size_t bytes) {
  DeviceSpec spec = DeviceSpec::test_device();
  spec.memory_bytes = bytes;
  return spec;
}

TEST(TenantQuota, OverQuotaTenantEvictedBeforeUnderQuotaTenant) {
  MemoryManager mm(Machine::single(tiny_device(10'000)), /*page=*/1000);
  // Tenant 2 (under quota) resident first: strictly LRU-oldest.
  const ArrayId b = mm.alloc(3000, "b", /*owner=*/2);
  mm.charge_residency(mm.info(b), 0);
  // Tenant 1 over its 2000-byte quota with two newer arrays.
  mm.set_tenant_quota(1, 0, 2000);
  const ArrayId a1 = mm.alloc(3000, "a1", 1);
  mm.charge_residency(mm.info(a1), 0);
  const ArrayId a2 = mm.alloc(3000, "a2", 1);
  mm.charge_residency(mm.info(a2), 0);
  ASSERT_TRUE(mm.tenant_over_quota(1, 0));
  ASSERT_FALSE(mm.tenant_over_quota(2, 0));

  // Tenant 2 admits 2000 more: the 1000-byte shortfall must come from
  // tenant 1's pages even though tenant 2's array b is LRU-colder.
  const ArrayId c = mm.alloc(2000, "c", 2);
  const ArrayId ids[] = {c};
  const EvictionPlan plan = mm.charge_residency(ids, 0, /*requester=*/2);
  ASSERT_FALSE(plan.empty());
  for (const PageOut& po : plan.page_outs) {
    EXPECT_TRUE(po.array == a1 || po.array == a2)
        << "victimized under-quota array " << po.array;
  }
  EXPECT_EQ(mm.info(b).resident_bytes_on(0), 3000u);
  EXPECT_EQ(mm.tenant_evicted_bytes(1, 0), 1000u);
  EXPECT_EQ(mm.tenant_evicted_bytes(2, 0), 0u);
}

TEST(TenantQuota, PinnedPagesStayExemptFromQuotaBias) {
  MemoryManager mm(Machine::single(tiny_device(10'000)), /*page=*/1000);
  mm.set_tenant_quota(1, 0, 2000);
  const ArrayId a1 = mm.alloc(4000, "a1", 1);
  mm.charge_residency(mm.info(a1), 0);
  const ArrayId a2 = mm.alloc(4000, "a2", 1);
  mm.charge_residency(mm.info(a2), 0);
  mm.set_pinned(mm.info(a1), 0, true);

  // Shortfall 2000: a1 is over-quota AND LRU-colder, but pinned — every
  // victim must come from a2.
  const ArrayId c = mm.alloc(4000, "c", 2);
  const ArrayId ids[] = {c};
  const EvictionPlan plan = mm.charge_residency(ids, 0, 2);
  ASSERT_FALSE(plan.empty());
  for (const PageOut& po : plan.page_outs) EXPECT_EQ(po.array, a2);
  EXPECT_EQ(mm.info(a1).resident_bytes_on(0), 4000u);
}

TEST(TenantQuota, NoQuotaConfigurationKeepsHistoricalVictimOrder) {
  // The same admission sequence with and without (never-binding) quota
  // calls must produce identical eviction plans: quota bias only ever
  // reorders when someone is actually over quota.
  auto run = [](bool configure) {
    MemoryManager mm(Machine::single(tiny_device(10'000)), /*page=*/1000);
    if (configure) {
      mm.set_tenant_quota(1, 0, MemoryManager::kNoQuota);
      mm.set_tenant_quota(2, 0, 1 << 30);
    }
    const ArrayId x = mm.alloc(4000, "x", 1);
    mm.charge_residency(mm.info(x), 0);
    const ArrayId y = mm.alloc(4000, "y", 2);
    mm.charge_residency(mm.info(y), 0);
    const ArrayId z = mm.alloc(4000, "z", 1);
    const ArrayId ids[] = {z};
    return mm.charge_residency(ids, 0, 1);
  };
  const EvictionPlan with = run(true);
  const EvictionPlan without = run(false);
  ASSERT_EQ(with.page_outs.size(), without.page_outs.size());
  for (std::size_t i = 0; i < with.page_outs.size(); ++i) {
    EXPECT_EQ(with.page_outs[i].array, without.page_outs[i].array);
    EXPECT_EQ(with.page_outs[i].first, without.page_outs[i].first);
    EXPECT_EQ(with.page_outs[i].count, without.page_outs[i].count);
  }
}

// ---------------------------------------------------------------------
// Accounting and OOM attribution
// ---------------------------------------------------------------------

TEST(TenantAccounting, UsedBytesFollowChargeAndFree) {
  MemoryManager mm(Machine::single(tiny_device(10'000)), /*page=*/1000);
  const ArrayId a = mm.alloc(3000, "a", 4);
  EXPECT_EQ(mm.tenant_alloc_bytes(4), 3000u);
  EXPECT_EQ(mm.tenant_used_bytes(4, 0), 0u);
  mm.charge_residency(mm.info(a), 0);
  EXPECT_EQ(mm.tenant_used_bytes(4, 0), 3000u);
  mm.free_array(a);
  EXPECT_EQ(mm.tenant_used_bytes(4, 0), 0u);
  EXPECT_EQ(mm.tenant_alloc_bytes(4), 0u);
}

TEST(TenantAccounting, DeviceOomCarriesRequestingTenant) {
  MemoryManager mm(Machine::single(tiny_device(10'000)), /*page=*/1000);
  const ArrayId small = mm.alloc(2000, "small", 3);
  mm.charge_residency(mm.info(small), 0);
  const ArrayId big = mm.alloc(20'000, "big", 3);
  const ArrayId ids[] = {big};
  try {
    mm.charge_residency(ids, 0, /*requester=*/3);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.device, 0);
    EXPECT_EQ(e.tenant, 3);
    EXPECT_EQ(e.requested, 20'000u);
    EXPECT_EQ(e.tenant_in_use, 2000u);  // tenant 3's resident bytes
    EXPECT_NE(std::string(e.what()).find("tenant 3"), std::string::npos);
  }
}

TEST(TenantAccounting, HostHeapOomCarriesOwner) {
  MemoryManager mm(Machine::single(tiny_device(10'000)), /*page=*/1000);
  mm.alloc(30'000, "most", 6);  // heap bound = 4x device = 40'000
  try {
    mm.alloc(20'000, "over", 6);
    FAIL() << "expected OutOfMemoryError";
  } catch (const OutOfMemoryError& e) {
    EXPECT_EQ(e.device, kInvalidDevice);
    EXPECT_EQ(e.tenant, 6);
    EXPECT_EQ(e.tenant_in_use, 30'000u);  // tenant 6's allocated bytes
  }
}

// ---------------------------------------------------------------------
// Tagging: streams, transactions, recorded replays
// ---------------------------------------------------------------------

TEST(TenantTagging, OpsInheritTheirStreamsTenant) {
  Engine eng(DeviceSpec::test_device());
  const StreamId s1 = eng.create_stream(kDefaultDevice, /*tenant=*/1);
  const StreamId s2 = eng.create_stream(kDefaultDevice, /*tenant=*/2);
  EXPECT_EQ(eng.stream_tenant(s1), 1);
  EXPECT_EQ(eng.stream_tenant(s2), 2);
  EXPECT_EQ(eng.stream_tenant(kDefaultStream), kDefaultTenant);
  eng.enqueue(test::raw_kernel(s1, 5.0, 2, 1.0), 0);
  eng.enqueue(test::raw_kernel(s2, 5.0, 2, 1.0), 0);
  eng.enqueue(test::raw_kernel(s2, 5.0, 2, 1.0), 0);
  eng.run_all();
  EXPECT_EQ(eng.tenant_completed_ops(1), 1);
  EXPECT_EQ(eng.tenant_completed_ops(2), 2);
  EXPECT_DOUBLE_EQ(eng.tenant_completed_work(1), 5.0);
  EXPECT_DOUBLE_EQ(eng.tenant_completed_work(2), 10.0);
  EXPECT_THROW(eng.create_stream(kDefaultDevice, -2), ApiError);
  // Tenant ids index dense accounting vectors: a wild id must be an
  // ApiError, not a multi-gigabyte resize.
  EXPECT_THROW(eng.create_stream(kDefaultDevice, kMaxTenants), ApiError);
  EXPECT_THROW(eng.set_tenant_weight(kMaxTenants, 2.0), ApiError);
  GpuRuntime rt(DeviceSpec::test_device());
  EXPECT_THROW(rt.set_active_tenant(kMaxTenants), ApiError);
  MemoryManager mm(Machine::single(DeviceSpec::test_device()));
  EXPECT_THROW(mm.alloc(1024, "wild", kMaxTenants), ApiError);
}

TEST(TenantTagging, RecordedReplayKeepsAttribution) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& t0 = mgr.create_tenant({"zero", 1.0});
  Tenant& t1 = mgr.create_tenant({"one", 1.0});
  (void)t0;
  const StreamId s = t1.create_stream();
  Submission sub;
  t1.gpu().begin_record(sub);
  t1.launch(s, full_kernel("rec"));
  t1.gpu().end_record();
  rt.synchronize_device();
  ASSERT_DOUBLE_EQ(rt.engine().tenant_completed_work(1), 5.0);
  // Two replays: the recorded op re-enqueues on tenant 1's stream, so
  // attribution re-derives from the stream without any per-op plumbing.
  rt.replay(sub);
  rt.synchronize_device();
  rt.replay(sub);
  rt.synchronize_device();
  EXPECT_DOUBLE_EQ(rt.engine().tenant_completed_work(1), 15.0);
  EXPECT_DOUBLE_EQ(rt.engine().tenant_completed_work(0), 0.0);
}

TEST(TenantTagging, WeightValidation) {
  Engine eng(DeviceSpec::test_device());
  EXPECT_THROW(eng.set_tenant_weight(0, 0.0), ApiError);
  EXPECT_THROW(eng.set_tenant_weight(-1, 1.0), ApiError);
  eng.set_tenant_weight(3, 2.5);
  EXPECT_DOUBLE_EQ(eng.tenant_weight(3), 2.5);
  EXPECT_DOUBLE_EQ(eng.tenant_weight(7), 1.0);  // unset: default weight
}

// ---------------------------------------------------------------------
// Manager surface
// ---------------------------------------------------------------------

TEST(TenantManagerSurface, HandlesRegisterWeightAndQuota) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& a = mgr.create_tenant({"a", 3.0, 1 << 20});
  Tenant& b = mgr.create_tenant({});
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(b.id(), 1);
  EXPECT_EQ(b.name(), "tenant1");
  EXPECT_DOUBLE_EQ(rt.engine().tenant_weight(0), 3.0);
  EXPECT_EQ(rt.memory().tenant_quota(0, 0), std::size_t{1} << 20);
  EXPECT_EQ(rt.memory().tenant_quota(1, 0), MemoryManager::kNoQuota);
  EXPECT_EQ(mgr.num_tenants(), 2u);
  EXPECT_THROW(mgr.tenant(5), ApiError);

  // The handle's streams carry its tenant; allocs carry its ownership.
  const StreamId s = b.create_stream();
  EXPECT_EQ(rt.engine().stream_tenant(s), 1);
  const ArrayId arr = b.alloc(4096, "barr");
  EXPECT_EQ(rt.memory().info(arr).owner, 1);
}

TEST(TenantManagerSurface, JainIndexBounds) {
  const std::vector<double> fair = {5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(TenantManager::jain_index(fair), 1.0);
  const std::vector<double> unfair = {10.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(TenantManager::jain_index(unfair), 0.25);
  EXPECT_DOUBLE_EQ(TenantManager::jain_index({}), 1.0);
}

TEST(TenantManagerSurface, TenantSynchronizeDrainsOwnStreams) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& a = mgr.create_tenant({"a", 1.0});
  Tenant& b = mgr.create_tenant({"b", 1.0});
  const StreamId sa = a.create_stream();
  const StreamId sb = b.create_stream();
  a.launch(sa, full_kernel("ka"));
  b.launch(sb, full_kernel("kb"));
  a.synchronize();
  EXPECT_EQ(a.ops_completed(), 1);
  // b's kernel may or may not have completed (shared virtual clock), but
  // a's own streams are drained.
  EXPECT_TRUE(rt.engine().stream_idle(sa));
  b.synchronize();
  EXPECT_TRUE(rt.engine().stream_idle(sb));
  EXPECT_EQ(b.ops_completed(), 1);
}

}  // namespace
}  // namespace psched::sim
