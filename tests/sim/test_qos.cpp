// Latency QoS: EEVDF ready-head ordering, lag accounting, admission
// control, and the p99 feedback controller (sim/qos.hpp).
//
// The qos ctest label runs this suite in the sanitize gate and in both
// the asan-gate and tsan-gate presets.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "../../bench/multi_app_scenario.hpp"
#include "sim/ingest_queue.hpp"
#include "sim/qos.hpp"
#include "sim/tenant.hpp"
#include "sim_test_util.hpp"

namespace psched::sim {
namespace {

/// The saturating test kernel (same as the tenant suite): fills the whole
/// test device and runs 5us solo, so N concurrent instances share the
/// kernel class at rate 1/N each.
LaunchSpec full_kernel(const std::string& name) {
  LaunchSpec k;
  k.name = name;
  k.config = LaunchConfig::linear(8, 512);
  k.profile.flops_sp = 2.56e6;
  return k;
}

// ---------------------------------------------------------------------
// EEVDF ready-head ordering. H2D copies serialize on the DMA engine
// (one in flight per direction), and drain_ready's sweep order decides
// which same-instant candidate grabs it — the stock order is ascending
// stream id, so the observable is which copy's start_time is 0.
// ---------------------------------------------------------------------

TEST(QosEevdf, EligibleEarlierDeadlineBeatsStreamOrder) {
  const auto copy_starts = [](bool keys) {
    Engine eng(DeviceSpec::test_device());
    const StreamId s0 = eng.create_stream(kDefaultDevice, /*tenant=*/0);
    const StreamId s1 = eng.create_stream(kDefaultDevice, /*tenant=*/1);
    if (keys) {
      // Tenant 1: eligible with a finite deadline; tenant 0: batch
      // (eligible, infinite). Earliest eligible deadline must win even
      // though its stream id sorts second.
      eng.set_tenant_qos(0, /*eligible=*/true, kTimeInfinity);
      eng.set_tenant_qos(1, /*eligible=*/true, /*vdeadline=*/100.0);
    }
    const OpId c0 = eng.enqueue(test::raw_copy(s0, OpKind::CopyH2D, 1e6), 0);
    const OpId c1 = eng.enqueue(test::raw_copy(s1, OpKind::CopyH2D, 1e6), 0);
    eng.run_all();
    return std::make_pair(eng.op(c0).start_time, eng.op(c1).start_time);
  };
  const auto [plain0, plain1] = copy_starts(false);
  EXPECT_EQ(plain0, 0.0);   // stock sweep: ascending stream id
  EXPECT_GT(plain1, 0.0);
  const auto [qos0, qos1] = copy_starts(true);
  EXPECT_EQ(qos1, 0.0);     // EEVDF: the finite deadline goes first
  EXPECT_GT(qos0, 0.0);
}

TEST(QosEevdf, IneligibleRanksBehindEligible) {
  Engine eng(DeviceSpec::test_device());
  const StreamId s0 = eng.create_stream(kDefaultDevice, 0);
  const StreamId s1 = eng.create_stream(kDefaultDevice, 1);
  // Tenant 0 has the *earlier* deadline but is ineligible (over-served);
  // the eligible batch tenant must still go first.
  eng.set_tenant_qos(0, /*eligible=*/false, /*vdeadline=*/10.0);
  eng.set_tenant_qos(1, /*eligible=*/true, kTimeInfinity);
  const OpId c0 = eng.enqueue(test::raw_copy(s0, OpKind::CopyH2D, 1e6), 0);
  const OpId c1 = eng.enqueue(test::raw_copy(s1, OpKind::CopyH2D, 1e6), 0);
  eng.run_all();
  EXPECT_EQ(eng.op(c1).start_time, 0.0);
  EXPECT_GT(eng.op(c0).start_time, 0.0);
}

TEST(QosEevdf, ClearRestoresStockOrder) {
  Engine eng(DeviceSpec::test_device());
  const StreamId s0 = eng.create_stream(kDefaultDevice, 0);
  const StreamId s1 = eng.create_stream(kDefaultDevice, 1);
  eng.set_tenant_qos(1, true, 100.0);
  ASSERT_TRUE(eng.qos_active());
  eng.clear_tenant_qos();
  EXPECT_FALSE(eng.qos_active());
  const OpId c0 = eng.enqueue(test::raw_copy(s0, OpKind::CopyH2D, 1e6), 0);
  const OpId c1 = eng.enqueue(test::raw_copy(s1, OpKind::CopyH2D, 1e6), 0);
  eng.run_all();
  EXPECT_EQ(eng.op(c0).start_time, 0.0);
  EXPECT_GT(eng.op(c1).start_time, 0.0);
}

// ---------------------------------------------------------------------
// Lag accounting.
// ---------------------------------------------------------------------

TEST(QosLag, ConservedNearZeroUnderSaturation) {
  // Two equal-weight batch tenants flooding one saturated kernel class:
  // the fluid split matches the entitled line exactly, so per-tenant lag
  // and the roster total both stay at rounding noise.
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& a = mgr.create_tenant({"a"});
  Tenant& b = mgr.create_tenant({"b"});
  const StreamId sa = a.create_stream();
  const StreamId sb = b.create_stream();
  QosManager qos(mgr);
  const LaunchSpec k = full_kernel("flood");
  // One batched submission: both backlogs land at a single host instant,
  // so neither tenant gets a solo head start the entitled line would
  // (correctly) count against it.
  rt.begin_submit();
  for (int i = 0; i < 40; ++i) {
    a.launch(sa, k);
    b.launch(sb, k);
  }
  rt.commit();
  // The batched calls stagger the two backlogs' first ops by one 0.2us
  // call quantum — a one-time, bounded head start. Under saturation the
  // fluid split then matches the entitled line exactly: the total lag
  // telescopes to ~zero every tick and the per-tenant lag is stationary
  // (bounded by the submission quantum, zero drift across ticks).
  rt.host_advance(10.0);
  qos.tick();
  const double lag0 = a.qos_stats().lag_us;
  EXPECT_LT(std::fabs(lag0), 0.5);
  for (int step = 0; step < 10; ++step) {
    rt.host_advance(10.0);
    qos.tick();
    EXPECT_LT(std::fabs(qos.total_lag()), 1e-6);
    EXPECT_NEAR(a.qos_stats().lag_us, lag0, 1e-6);
  }
  EXPECT_TRUE(b.qos_stats().eligible);  // the later-submitted backlog
  rt.synchronize_device();
}

TEST(QosLag, CappedTenantFallsBehindItsEntitlement) {
  // Low-occupancy kernels cap near solo speed, so both tenants receive
  // ~equal service no matter the weights. Under weights {2, 1} the
  // entitled line splits 2:1: the weight-2 tenant falls behind it
  // (lag > 0, stays eligible), the weight-1 tenant runs ahead (lag < 0,
  // turns ineligible), and the total still telescopes to ~zero.
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& hi = mgr.create_tenant({"hi", 2.0});
  Tenant& lo = mgr.create_tenant({"lo", 1.0});
  const StreamId sh = hi.create_stream();
  const StreamId sl = lo.create_stream();
  QosManager qos(mgr);
  LaunchSpec k = full_kernel("light");
  k.config = LaunchConfig::linear(1, 128);  // ~solo-speed capped member
  for (int i = 0; i < 100; ++i) {
    hi.launch(sh, k);
    lo.launch(sl, k);
  }
  for (int step = 0; step < 8; ++step) {
    rt.host_advance(5.0);
    qos.tick();
  }
  const QosTenantStats h = hi.qos_stats();
  const QosTenantStats l = lo.qos_stats();
  EXPECT_GT(h.lag_us, 1e-3);   // under-served vs the 2/3 entitlement
  EXPECT_LT(l.lag_us, -1e-3);  // over-served vs the 1/3 entitlement
  EXPECT_TRUE(h.eligible);
  EXPECT_FALSE(l.eligible);
  EXPECT_LT(std::fabs(qos.total_lag()), 1e-6);
  rt.synchronize_device();
}

// ---------------------------------------------------------------------
// Batch-only equivalence: a QosManager over all-batch tenants must not
// perturb the schedule at all.
// ---------------------------------------------------------------------

TEST(QosGolden, BatchOnlyScheduleBitIdentical) {
  const auto run = [](bool with_qos) {
    GpuRuntime rt(DeviceSpec::test_device());
    TenantManager mgr(rt);
    Tenant& a = mgr.create_tenant({"a", 2.0});
    Tenant& b = mgr.create_tenant({"b", 1.0});
    std::vector<StreamId> streams = {a.create_stream(), a.create_stream(),
                                     b.create_stream()};
    std::unique_ptr<QosManager> qos;
    if (with_qos) qos = std::make_unique<QosManager>(mgr);
    const LaunchSpec k = full_kernel("k");
    for (int r = 0; r < 12; ++r) {
      a.launch(streams[0], k);
      a.launch(streams[1], k);
      b.launch(streams[2], k);
      rt.host_advance(7.0);
      // The tick polls internally; the baseline polls in the same spot.
      if (with_qos) {
        qos->tick();
      } else {
        rt.poll();
      }
    }
    rt.synchronize_device();
    return rt.timeline().entries();
  };
  const auto plain = run(false);
  const auto qos = run(true);
  ASSERT_EQ(plain.size(), qos.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].op, qos[i].op);
    EXPECT_EQ(plain[i].stream, qos[i].stream);
    EXPECT_EQ(plain[i].start, qos[i].start);  // bit-identical, no tolerance
    EXPECT_EQ(plain[i].end, qos[i].end);
  }
}

// ---------------------------------------------------------------------
// Admission control: structured, recoverable rejections.
// ---------------------------------------------------------------------

TEST(QosAdmission, DepthBoundRejectsAndRecovers) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& t = mgr.create_tenant({"t"});
  const StreamId s = t.create_stream();
  QosManager qos(mgr);
  qos.set_limits(t.id(), {/*max_queue_depth=*/2, /*max_lag_us=*/-1});
  const LaunchSpec k = full_kernel("k");
  t.launch(s, k);
  t.launch(s, k);
  // Third launch finds the tenant at its depth bound: structured error,
  // thrown before any state changes.
  try {
    t.launch(s, k);
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.tenant, t.id());
    EXPECT_EQ(e.service_class, ServiceClass::Batch);
    EXPECT_EQ(e.queue_depth, 2);
    EXPECT_EQ(e.depth_limit, 2);
    EXPECT_EQ(e.lag_limit_us, -1);
    EXPECT_NE(std::string(e.what()).find("queue depth"), std::string::npos);
  }
  EXPECT_EQ(t.qos_stats().admission_rejections, 1);
  EXPECT_EQ(t.qos_stats().outstanding, 2);
  // Recovery: drain the backlog, let a tick observe the completions, and
  // the same call succeeds — the rejection left the runtime fully usable.
  rt.synchronize_device();
  qos.tick();
  EXPECT_EQ(t.qos_stats().outstanding, 0);
  EXPECT_NE(t.launch(s, k), kInvalidOp);
  rt.synchronize_device();
}

TEST(QosAdmission, LagBoundRejectsWithLagBranch) {
  // An unbounded depth with a tiny lag bound: force lag past it via the
  // capped-kernel imbalance from QosLag above, then expect the lag branch
  // of the error (depth_limit -1, lag over limit).
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& hi = mgr.create_tenant({"hi", 2.0});
  Tenant& lo = mgr.create_tenant({"lo", 1.0});
  const StreamId sh = hi.create_stream();
  const StreamId sl = lo.create_stream();
  QosManager qos(mgr);
  qos.set_limits(hi.id(), {-1, /*max_lag_us=*/1e-3});
  LaunchSpec k = full_kernel("light");
  k.config = LaunchConfig::linear(1, 128);
  for (int i = 0; i < 100; ++i) {
    hi.launch(sh, k);
    lo.launch(sl, k);
  }
  for (int step = 0; step < 8; ++step) {
    rt.host_advance(5.0);
    qos.tick();
  }
  ASSERT_GT(hi.qos_stats().lag_us, 1e-3);
  try {
    hi.launch(sh, k);
    FAIL() << "expected AdmissionError";
  } catch (const AdmissionError& e) {
    EXPECT_EQ(e.tenant, hi.id());
    EXPECT_EQ(e.depth_limit, -1);
    EXPECT_GT(e.lag_us, e.lag_limit_us);
    EXPECT_NE(std::string(e.what()).find("lag"), std::string::npos);
  }
  rt.synchronize_device();
}

TEST(QosAdmission, IngestSubmitRejectsPostDefers) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& t = mgr.create_tenant({"t"});
  const StreamId s = rt.create_stream();
  QosManager qos(mgr);
  // Depth bound 0: every producer-side submission is over the bound, so
  // the rejection is deterministic regardless of drain timing.
  qos.set_limits(t.id(), {/*max_queue_depth=*/0, -1});
  IngestService svc(rt, {.shards = 2, .max_batch = 16});
  const auto op = [&] {
    return test::raw_kernel(s, 5.0, 4, 1.0, 0, "q");
  };
  EXPECT_THROW(svc.submit(t.id(), op(), rt.now()), AdmissionError);
  // Fire-and-forget posts cannot surface the error: they are deferred
  // (counted) but still queued, so no work is silently lost.
  svc.post(t.id(), op(), rt.now());
  svc.flush(t.id()).wait();
  rt.poll();
  const IngestStats st = svc.stats();
  EXPECT_EQ(st.rejected, 1);
  EXPECT_EQ(st.deferred, 1);
  // The per-shard view sums to the roster totals.
  long rejected = 0;
  long deferred = 0;
  for (int i = 0; i < 2; ++i) {
    rejected += svc.shard_stats(i).rejected;
    deferred += svc.shard_stats(i).deferred;
  }
  EXPECT_EQ(rejected, st.rejected);
  EXPECT_EQ(deferred, st.deferred);
  // The manager counts every tripped check (the deferred post tripped it
  // too); the ingest counters are what split rejected from deferred.
  EXPECT_EQ(qos.stats(t.id()).admission_rejections, 2);
  rt.synchronize_device();
}

// ---------------------------------------------------------------------
// Service-class configuration errors.
// ---------------------------------------------------------------------

TEST(QosConfig, LatencyClassNeedsPositiveTarget) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  QosManager qos(mgr);
  TenantSpec bad;
  bad.name = "bad";
  bad.service_class = ServiceClass::LatencyCritical;  // target left at 0
  EXPECT_THROW(mgr.create_tenant(bad), QosError);
  // The rejected spec must not have leaked a half-registered tenant.
  EXPECT_EQ(qos.num_tenants(), 0u);
  bad.target_p99_us = 50.0;
  EXPECT_NO_THROW(mgr.create_tenant(bad));
  EXPECT_EQ(qos.num_tenants(), 1u);
}

TEST(QosConfig, ValidationRunsBeforeAnyStateChanges) {
  // The class config is validated up front in create_tenant, attached
  // manager or not — an invalid latency tenant can never exist, so a
  // later attach never has to fail on stale state.
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  TenantSpec bad;
  bad.name = "bad";
  bad.service_class = ServiceClass::LatencyCritical;  // target left at 0
  EXPECT_THROW(mgr.create_tenant(bad), QosError);
  // Nothing half-created: the next id is still 0 and attach succeeds.
  bad.target_p99_us = 25.0;
  Tenant& ok = mgr.create_tenant(bad);
  EXPECT_EQ(ok.id(), 0);
  QosManager qos(mgr);
  EXPECT_EQ(qos.num_tenants(), 1u);
}

TEST(QosConfig, StatsRequireAnAttachedManager) {
  GpuRuntime rt(DeviceSpec::test_device());
  TenantManager mgr(rt);
  Tenant& t = mgr.create_tenant({"t"});
  EXPECT_THROW((void)t.qos_stats(), ApiError);
}

// ---------------------------------------------------------------------
// Feedback controller: re-weighting drives the latency tenant's p99
// under its target. Asserted on the exact scenario the bench ratchet
// gates (bench/multi_app_scenario.hpp), so the acceptance numbers and
// the test can never diverge.
// ---------------------------------------------------------------------

TEST(QosController, ReweightingConvergesToTheTarget) {
  const auto q = psched::bench::run_qos_mixed(/*smoke=*/true);
  ASSERT_GT(q.latency_ops, 0);
  // The controller boosted the latency tenant well past its declared
  // weight 1.0 and brought its p99 under the target; plain weighted
  // sharing leaves it at the backlog-bound 1/4-share latency.
  EXPECT_GT(q.final_weight, 1.0);
  EXPECT_LE(q.qos_p99_us, q.target_p99_us);
  EXPECT_GT(q.base_p99_us, q.target_p99_us);
  // The acceptance bounds the bench ratchet enforces.
  EXPECT_LE(q.p99_ratio, 0.5);
  EXPECT_GE(q.batch_ratio, 0.8);
  EXPECT_EQ(q.deadline_misses, 0);
}

}  // namespace
}  // namespace psched::sim
