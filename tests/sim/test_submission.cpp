// Transactional batched ingestion: Submission / begin_transaction /
// commit_transaction semantics, and the golden batch/per-call equivalence
// guarantee — committing a group of same-time calls is bit-identical to
// issuing them per call, on the pinned fixture scenarios, single- and
// multi-device.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "sim/synthetic.hpp"
#include "sim_test_util.hpp"

namespace psched::sim {
namespace {

using test::raw_copy;
using test::raw_kernel;

/// Exact (bit-level) timeline comparison: the batched path must group the
/// per-call op sequence, never reorder or re-time it.
void expect_identical(const Timeline& got, const Timeline& want) {
  const auto& a = got.entries();
  const auto& b = want.entries();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op, b[i].op) << "entry " << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << "entry " << i;
    EXPECT_EQ(a[i].stream, b[i].stream) << "entry " << i;
    EXPECT_EQ(a[i].device, b[i].device) << "entry " << i;
    EXPECT_EQ(a[i].name, b[i].name) << "entry " << i;
    // Bit-identical, not merely within tolerance: both paths must execute
    // the same arithmetic in the same order.
    EXPECT_EQ(a[i].start, b[i].start) << "entry " << i << " (" << a[i].name
                                      << ")";
    EXPECT_EQ(a[i].end, b[i].end) << "entry " << i << " (" << a[i].name
                                  << ")";
  }
}

/// Drive the contention DAG through a Submission committed as one
/// transaction (all items at host time 0).
void build_contention_via_submission(Engine& eng, int n_ops, int n_streams) {
  Submission sub;
  emit_contention_dag(
      eng, n_ops, n_streams,
      [&](Op op) { sub.enqueue(std::move(op), 0); },
      [&](EventId ev, StreamId s) { sub.record_event(ev, s, 0); },
      [&](StreamId s, EventId ev) { sub.wait_event(s, ev, 0); });
  eng.commit(sub);
  EXPECT_TRUE(sub.empty());  // consumed (capacity retained)
}

// --- golden equivalence: pinned fixture scenario, single-device ---

TEST(SubmissionEquivalence, ContentionDagMatchesPerCallBitExact) {
  Engine per_call(DeviceSpec::test_device());
  build_contention_dag(per_call, 1000, 16);  // the contention_1k fixture DAG
  per_call.run_all();

  Engine batched(DeviceSpec::test_device());
  build_contention_via_submission(batched, 1000, 16);
  batched.run_all();

  expect_identical(batched.timeline(), per_call.timeline());
  EXPECT_EQ(batched.solve_count(), per_call.solve_count());
  EXPECT_EQ(batched.solved_ops(), per_call.solved_ops());
  for (const OpKind kind :
       {OpKind::Kernel, OpKind::CopyH2D, OpKind::CopyD2H, OpKind::Fault}) {
    EXPECT_EQ(batched.class_solve_count(0, kind),
              per_call.class_solve_count(0, kind))
        << to_string(kind);
  }
}

// --- golden equivalence: multi-device, including peer-link classes ---

TEST(SubmissionEquivalence, MultiDeviceContentionMatchesPerCall) {
  const Machine machine =
      Machine::uniform(DeviceSpec::test_device(), 4, /*nvlink=*/true);

  Engine per_call{Machine(machine)};
  build_multi_device_contention_dag(per_call, 600, 12);
  per_call.run_all();

  Engine batched{Machine(machine)};
  Submission sub;
  {
    // The multi-device generator issued through a submission.
    const int n_devices = batched.num_devices();
    for (int i = 1; i < 12; ++i) {
      batched.create_stream(static_cast<DeviceId>(i % n_devices));
    }
    for (int i = 0; i < 600; ++i) {
      const auto s = static_cast<StreamId>(i % 12);
      const DeviceId dev = batched.stream_device(s);
      Op op;
      if (i % 3 == 1) {
        if (n_devices > 1 && i % 12 == 7) {
          op.kind = OpKind::CopyP2P;
          op.peer = static_cast<DeviceId>((dev + n_devices - 1) % n_devices);
        } else {
          op.kind = (i % 6 == 1) ? OpKind::CopyH2D : OpKind::CopyD2H;
        }
        op.bytes = 1e4 + (i % 7) * 1e3;
        op.work = op.bytes;
        op.name = "cp";
      } else if (i % 16 == 9) {
        op.kind = OpKind::Fault;
        op.bytes = 5e3 + (i % 5) * 1e3;
        op.work = op.bytes;
        op.name = "fault";
      } else {
        op.kind = OpKind::Kernel;
        op.work = 5.0 + (i % 11);
        op.sm_demand = 1 + (i % 4);
        op.occupancy = 0.5 + 0.5 * ((i % 3) / 2.0);
        op.bw_need = (i % 5 == 0) ? 50.0 : 0.0;
        op.name = "k";
      }
      op.stream = s;
      if (i % 8 == 7 && i > 32) {
        const EventId ev = batched.create_event();
        sub.record_event(ev, static_cast<StreamId>((i - 1) % 12), 0);
        sub.wait_event(s, ev, 0);
      }
      sub.enqueue(std::move(op), 0);
    }
  }
  batched.commit(sub);
  batched.run_all();

  expect_identical(batched.timeline(), per_call.timeline());
  for (DeviceId d = 0; d < 4; ++d) {
    for (const OpKind kind :
         {OpKind::Kernel, OpKind::CopyH2D, OpKind::CopyD2H, OpKind::Fault}) {
      EXPECT_EQ(batched.class_solve_count(d, kind),
                per_call.class_solve_count(d, kind))
          << "device " << d << " " << to_string(kind);
    }
  }
  for (DeviceId s = 0; s < 4; ++s) {
    for (DeviceId d = 0; d < 4; ++d) {
      EXPECT_EQ(batched.link_solve_count(s, d),
                per_call.link_solve_count(s, d));
    }
  }
}

// --- transaction semantics ---

TEST(Transaction, IdsAssignedInOrderAndOpsFrozenUntilCommit) {
  Engine eng(DeviceSpec::test_device());
  const StreamId s1 = eng.create_stream();
  eng.begin_transaction(0);
  EXPECT_TRUE(eng.in_transaction());
  const OpId a = eng.enqueue(raw_kernel(kDefaultStream, 10, 2, 1.0), 0);
  const OpId b = eng.enqueue(raw_kernel(s1, 10, 2, 1.0), 0);
  EXPECT_EQ(b, a + 1);
  // Frozen: ingested but nothing started.
  EXPECT_EQ(eng.op(a).state, OpState::Queued);
  // Time control is rejected while the transaction is open.
  EXPECT_THROW(eng.advance_to(1), ApiError);
  EXPECT_THROW((void)eng.run_all(), ApiError);
  EXPECT_THROW((void)eng.run_until_op_done(a), ApiError);
  EXPECT_THROW((void)eng.run_until_stream_idle(s1), ApiError);
  EXPECT_THROW(eng.begin_transaction(0), ApiError);  // no nesting
  EXPECT_EQ(eng.commit_transaction(), 2u);
  EXPECT_FALSE(eng.in_transaction());
  eng.run_all();
  EXPECT_TRUE(eng.op_done(a));
  EXPECT_TRUE(eng.op_done(b));
}

TEST(Transaction, CommitWithoutBeginThrows) {
  Engine eng(DeviceSpec::test_device());
  EXPECT_THROW((void)eng.commit_transaction(), ApiError);
}

TEST(Transaction, StaggeredHostTimesReplayPerCallIssueTiming) {
  // A transaction whose items carry increasing host times starts each op
  // at its issue time, exactly like per-call issue with interleaved
  // advances (the command-buffer-flush semantics).
  Engine per_call(DeviceSpec::test_device());
  const StreamId pc_s1 = per_call.create_stream();
  per_call.advance_to(5);
  per_call.enqueue(raw_kernel(kDefaultStream, 10, 4, 1.0), 5);
  per_call.advance_to(20);
  per_call.enqueue(raw_kernel(pc_s1, 10, 4, 1.0), 20);
  per_call.run_all();

  Engine batched(DeviceSpec::test_device());
  const StreamId ba_s1 = batched.create_stream();
  batched.begin_transaction(5);
  batched.enqueue(raw_kernel(kDefaultStream, 10, 4, 1.0), 5);
  batched.enqueue(raw_kernel(ba_s1, 10, 4, 1.0), 20);
  batched.commit_transaction();
  batched.run_all();

  expect_identical(batched.timeline(), per_call.timeline());
  EXPECT_EQ(batched.timeline().entries()[0].start, 5.0);
  EXPECT_EQ(batched.timeline().entries()[1].start, 20.0);
}

// --- Submission builder semantics ---

TEST(Submission, CommitReturnsIdsInSubmissionOrder) {
  Engine eng(DeviceSpec::test_device());
  const StreamId s1 = eng.create_stream();
  const EventId ev = eng.create_event();
  Submission sub;
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 0);
  sub.record_event(ev, kDefaultStream, 0);
  sub.wait_event(s1, ev, 0);  // lowered to a marker op: consumes an id
  sub.enqueue(raw_kernel(s1, 5, 2, 1.0), 0);
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub.num_ops(), 3u);
  const std::vector<OpId> ids = eng.commit(sub);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], ids[0] + 1);
  EXPECT_EQ(ids[2], ids[1] + 1);
  eng.run_all();
  EXPECT_TRUE(eng.op_done(ids[2]));
}

TEST(Submission, BindRunsWithAssignedIdBeforeOpCanStart) {
  Engine eng(DeviceSpec::test_device());
  Submission sub;
  OpId seen = kInvalidOp;
  bool completed = false;
  // A zero-work marker completes inside the committing advance; the bind
  // hook must run first so set_on_complete attaches in time.
  Op marker;
  marker.kind = OpKind::Marker;
  marker.stream = kDefaultStream;
  marker.work = 0;
  sub.enqueue(std::move(marker), 0, [&](Engine& e, OpId id) {
    seen = id;
    EXPECT_FALSE(e.op_done(id));
    e.set_on_complete(id, [&completed] { completed = true; });
  });
  const std::vector<OpId> ids = eng.commit(sub);
  EXPECT_EQ(seen, ids.front());
  EXPECT_TRUE(completed);  // marker completed during the commit
}

TEST(Submission, AtomicValidationRejectsWholeSubmission) {
  Engine eng(DeviceSpec::test_device());
  Submission sub;
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 0);
  sub.enqueue(raw_kernel(99, 5, 2, 1.0), 0);  // invalid stream
  EXPECT_THROW((void)eng.commit(sub), ApiError);
  // Nothing was applied: the engine is untouched and idle.
  EXPECT_TRUE(eng.all_idle());
  EXPECT_EQ(eng.run_all(), 0.0);
}

TEST(Submission, NonMonotoneHostTimesRejected) {
  Engine eng(DeviceSpec::test_device());
  Submission sub;
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 10);
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 5);
  EXPECT_THROW((void)eng.commit(sub), ApiError);
  EXPECT_TRUE(eng.all_idle());
}

TEST(Submission, P2PValidationAppliesAtCommit) {
  Engine eng(Machine::uniform(DeviceSpec::test_device(), 2, true));
  const StreamId s1 = eng.create_stream(1);
  Submission sub;
  Op bad = raw_copy(s1, OpKind::CopyP2P, 1e4, "p2p");
  bad.peer = 1;  // equals destination device
  sub.enqueue(std::move(bad), 0);
  EXPECT_THROW((void)eng.commit(sub), ApiError);
  EXPECT_TRUE(eng.all_idle());
}

TEST(Submission, CommitDuringOpenTransactionRejectsSubmissionIntact) {
  Engine eng(DeviceSpec::test_device());
  eng.begin_transaction(0);
  Submission sub;
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 0);
  // Atomic rejection: the submission keeps its items (nothing drained).
  EXPECT_THROW((void)eng.commit(sub), ApiError);
  EXPECT_EQ(sub.num_ops(), 1u);
  EXPECT_EQ(eng.commit_transaction(), 0u);
  // After the transaction closes the same submission commits normally.
  const auto ids = eng.commit(sub);
  ASSERT_EQ(ids.size(), 1u);
  eng.run_all();
  EXPECT_TRUE(eng.op_done(ids.front()));
}

TEST(Submission, EmptyCommitIsNoop) {
  Engine eng(DeviceSpec::test_device());
  Submission sub;
  EXPECT_TRUE(eng.commit(sub).empty());
  EXPECT_TRUE(eng.all_idle());
}

// --- recorded (re-committable) submissions ---

TEST(RecordedSubmission, RecommitsWithoutRevalidationOrReallocation) {
  Engine eng(DeviceSpec::test_device());
  const StreamId s1 = eng.create_stream();
  const EventId ev = eng.create_event();
  Submission sub;
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 0);
  sub.record_event(ev, kDefaultStream, 0);
  sub.wait_event(s1, ev, 0);
  sub.enqueue(raw_kernel(s1, 5, 2, 1.0), 0);
  const void* buffer = sub.buffer_id();
  const std::size_t items = sub.size();

  // Const-view commit: the recording is validated once (sealed), applied,
  // and left fully intact — no draining, no reallocation.
  const std::size_t n1 = eng.commit(std::as_const(sub));
  EXPECT_EQ(n1, 3u);
  EXPECT_TRUE(sub.sealed());
  EXPECT_EQ(sub.validations(), 1);
  EXPECT_EQ(sub.size(), items);
  EXPECT_EQ(sub.buffer_id(), buffer);
  eng.run_all();

  // Replays skip the validation pre-pass and reuse the same buffer.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(eng.commit(std::as_const(sub)), 3u);
    eng.run_all();
  }
  EXPECT_EQ(sub.validations(), 1);
  EXPECT_EQ(sub.buffer_id(), buffer);
  EXPECT_EQ(sub.size(), items);
  // Every replay really executed: four commits x two kernels each.
  long kernels = 0;
  for (const auto& e : eng.timeline().entries()) {
    if (e.kind == OpKind::Kernel) ++kernels;
  }
  EXPECT_EQ(kernels, 8);
}

TEST(RecordedSubmission, MutationUnsealsAndForcesRevalidation) {
  Engine eng(DeviceSpec::test_device());
  Submission sub;
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 0);
  eng.commit(std::as_const(sub));
  EXPECT_TRUE(sub.sealed());
  sub.enqueue(raw_kernel(kDefaultStream, 5, 2, 1.0), 0);
  EXPECT_FALSE(sub.sealed());
  eng.commit(std::as_const(sub));
  EXPECT_EQ(sub.validations(), 2);
  // A recording sealed by one engine is re-validated by another.
  Engine other(DeviceSpec::test_device());
  other.create_stream();
  other.commit(std::as_const(sub));
  EXPECT_EQ(sub.validations(), 3);
}

TEST(RecordedSubmission, ConstCommitMatchesDrainingCommitBitExact) {
  // The same recorded list through the const-view path and the draining
  // path: identical timelines.
  Engine drained(DeviceSpec::test_device());
  build_contention_via_submission(drained, 300, 8);
  drained.run_all();

  Engine replayed(DeviceSpec::test_device());
  Submission sub;
  emit_contention_dag(
      replayed, 300, 8, [&](Op op) { sub.enqueue(std::move(op), 0); },
      [&](EventId ev, StreamId s) { sub.record_event(ev, s, 0); },
      [&](StreamId s, EventId ev) { sub.wait_event(s, ev, 0); });
  replayed.commit(std::as_const(sub));
  replayed.run_all();
  EXPECT_FALSE(sub.empty());  // const commit does not drain

  expect_identical(replayed.timeline(), drained.timeline());
}

// --- batched solver-work amortization ---

TEST(Transaction, BatchDirtiesEachClassOncePerCommit) {
  // 32 same-time kernels through one transaction: the kernel class is
  // re-solved once for the whole batch at the first step, not once per
  // ingested op.
  Engine eng(DeviceSpec::test_device());
  for (int i = 1; i < 32; ++i) eng.create_stream();
  eng.begin_transaction(0);
  for (int i = 0; i < 32; ++i) {
    eng.enqueue(raw_kernel(static_cast<StreamId>(i), 100, 1, 0.5), 0);
  }
  eng.commit_transaction();
  eng.advance_to(1);  // everything started and priced
  EXPECT_EQ(eng.class_solve_count(0, OpKind::Kernel), 1);
}

}  // namespace
}  // namespace psched::sim
